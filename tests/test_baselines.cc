/**
 * @file
 * Tests for the baseline methodologies: BarrierPoint region
 * accounting and its failure mode on barrier-poor apps, naive
 * MT-SimPoint slicing, and time-based sampling coverage.
 */

#include <gtest/gtest.h>

#include "baselines/barrierpoint.hh"
#include "baselines/naive_simpoint.hh"
#include "baselines/time_sampling.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "workload/descriptor.hh"

namespace looppoint {
namespace {

TEST(BarrierPoint, RegionsMatchRunList)
{
    Program prog =
        generateProgram(findApp("628.pop2_s.1"), InputClass::Test);
    BarrierPointOptions opts;
    opts.numThreads = 4;
    BarrierPointResult r = analyzeBarrierPoint(prog, opts);
    EXPECT_EQ(r.regionIcounts.size(), prog.runList.size());
    uint64_t sum = 0;
    for (uint64_t icount : r.regionIcounts)
        sum += icount;
    EXPECT_EQ(sum, r.totalFilteredIcount);
    EXPECT_GT(r.chosenK, 0u);
    EXPECT_FALSE(r.regions.empty());
}

TEST(BarrierPoint, MultipliersCoverAllWork)
{
    Program prog =
        generateProgram(findApp("654.roms_s.1"), InputClass::Test);
    BarrierPointOptions opts;
    opts.numThreads = 4;
    BarrierPointResult r = analyzeBarrierPoint(prog, opts);
    double covered = 0.0;
    for (const auto &region : r.regions)
        covered += region.multiplier *
                   static_cast<double>(region.filteredIcount);
    EXPECT_NEAR(covered, static_cast<double>(r.totalFilteredIcount),
                1.0);
}

TEST(BarrierPoint, FailsOnBarrierPoorApps)
{
    // 638.imagick / 657.xz: few kernel instances, so the largest
    // inter-barrier region is a large fraction of the program and the
    // parallel speedup collapses — while a barrier-rich app (pop2)
    // does fine. This is the paper's Fig. 9 story.
    Program imagick =
        generateProgram(findApp("638.imagick_s.1"), InputClass::Train);
    Program pop2 =
        generateProgram(findApp("628.pop2_s.1"), InputClass::Train);
    BarrierPointOptions opts;
    opts.numThreads = 8;

    BarrierPointResult bp_img = analyzeBarrierPoint(imagick, opts);
    BarrierPointResult bp_pop = analyzeBarrierPoint(pop2, opts);

    EXPECT_LT(bp_img.theoreticalParallelSpeedup(), 8.0);
    EXPECT_GT(bp_pop.theoreticalParallelSpeedup(),
              bp_img.theoreticalParallelSpeedup() * 4);
}

TEST(NaiveSimpoint, SlicesCoverExecution)
{
    Program prog =
        generateProgram(findApp("619.lbm_s.1"), InputClass::Test);
    NaiveSimpointOptions opts;
    opts.numThreads = 4;
    opts.sliceSizeGlobal = 100'000;
    NaiveSimpointResult r = analyzeNaiveSimpoint(prog, opts);
    EXPECT_GT(r.sliceIcounts.size(), 2u);
    EXPECT_GT(r.totalIcount, 0u);
    EXPECT_FALSE(r.regions.empty());
    for (const auto &region : r.regions)
        EXPECT_GT(region.endIcount, region.startIcount);
}

TEST(NaiveSimpoint, ActiveWaitInflatesSliceCount)
{
    // Under the active policy the naive scheme slices spin
    // instructions too, so it produces more slices for the same
    // program — the instability LoopPoint's filtered counting avoids.
    Program prog =
        generateProgram(findApp("657.xz_s.2"), InputClass::Test);
    NaiveSimpointOptions opts;
    opts.numThreads = 4;
    opts.sliceSizeGlobal = 100'000;

    opts.waitPolicy = WaitPolicy::Passive;
    auto passive = analyzeNaiveSimpoint(prog, opts);
    opts.waitPolicy = WaitPolicy::Active;
    auto active = analyzeNaiveSimpoint(prog, opts);
    EXPECT_GT(active.sliceIcounts.size(), passive.sliceIcounts.size());
}

TEST(NaiveSimpoint, RegionSimulationRuns)
{
    Program prog =
        generateProgram(findApp("619.lbm_s.1"), InputClass::Test);
    NaiveSimpointOptions opts;
    opts.numThreads = 4;
    opts.sliceSizeGlobal = 150'000;
    NaiveSimpointResult analysis = analyzeNaiveSimpoint(prog, opts);
    SimConfig sim_cfg;
    std::vector<SimMetrics> metrics;
    for (const auto &r : analysis.regions)
        metrics.push_back(
            simulateNaiveRegion(prog, opts, r, sim_cfg));
    double runtime = extrapolateNaiveRuntime(analysis, metrics);
    EXPECT_GT(runtime, 0.0);
}

TEST(TimeSampling, CoversWholeProgramAndPredicts)
{
    Program prog =
        generateProgram(findApp("654.roms_s.1"), InputClass::Test);
    TimeSamplingOptions opts;
    opts.numThreads = 4;
    opts.detailedInstrs = 50'000;
    opts.fastForwardInstrs = 200'000;
    TimeSamplingResult r = runTimeSampling(prog, opts, SimConfig{});
    EXPECT_GT(r.detailedWindows, 2u);
    EXPECT_GT(r.totalInstructions, 0u);
    EXPECT_GT(r.predictedRuntimeSeconds, 0.0);
    EXPECT_NEAR(r.detailFraction(), 0.2, 0.12);
}

TEST(TimeSampling, ReasonablyAccurateUnderPassive)
{
    Program prog =
        generateProgram(findApp("619.lbm_s.1"), InputClass::Test);
    TimeSamplingOptions opts;
    opts.numThreads = 4;
    opts.detailedInstrs = 80'000;
    opts.fastForwardInstrs = 160'000;
    SimConfig sim_cfg;
    TimeSamplingResult ts = runTimeSampling(prog, opts, sim_cfg);

    ExecConfig ecfg;
    ecfg.numThreads = 4;
    double actual = MulticoreSim(prog, ecfg, sim_cfg)
                        .run()
                        .runtimeSeconds;
    EXPECT_LT(absRelErrorPct(ts.predictedRuntimeSeconds, actual),
              25.0);
}

TEST(TimeSampling, RejectsZeroWindow)
{
    Program prog = generateProgram(demoMatrixApp(), InputClass::Test);
    TimeSamplingOptions opts;
    opts.detailedInstrs = 0;
    EXPECT_THROW(runTimeSampling(prog, opts, SimConfig{}), FatalError);
}

} // namespace
} // namespace looppoint
