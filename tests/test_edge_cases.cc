/**
 * @file
 * Edge-case tests for the execution engine and OpenMP runtime model:
 * degenerate thread/iteration ratios, tiny chunk counts,
 * master/single/reduction execution counts, and wait-policy corner
 * cases.
 */

#include <gtest/gtest.h>

#include "exec/driver.hh"
#include "exec/engine.hh"
#include "isa/program_builder.hh"
#include "util/logging.hh"

namespace looppoint {
namespace {

Program
makeKernelProgram(SchedPolicy sched, uint64_t iters,
                  uint64_t chunk = 4, bool master = false,
                  bool reduction = false)
{
    ProgramBuilder b("edge", 73);
    uint32_t k = b.beginKernel("k", sched, iters, chunk);
    if (master)
        b.setMasterPrologue({.numInstrs = 10, .streams = {}}, false);
    b.addBlock({.numInstrs = 20, .fracMem = 0.2, .streams = {}});
    if (reduction)
        b.setReduction({.numInstrs = 8, .streams = {}});
    b.endKernel();
    b.runKernels({k}, 2);
    return b.build();
}

TEST(EdgeCases, MoreThreadsThanIterations)
{
    // 3 iterations, 8 threads: five threads get empty static ranges
    // but still hit the barrier; the program completes with exactly
    // the right amount of work.
    Program p = makeKernelProgram(SchedPolicy::StaticFor, 3);
    for (auto policy : {WaitPolicy::Passive, WaitPolicy::Active}) {
        ExecConfig cfg{.numThreads = 8, .waitPolicy = policy};
        ExecutionEngine e(p, cfg);
        RoundRobinDriver d(e, 100);
        d.run();
        EXPECT_TRUE(e.allFinished());
        EXPECT_EQ(e.blockExecCount(p.kernels[0].workerHeader), 3u * 2u);
    }
}

TEST(EdgeCases, SingleIterationDynamic)
{
    Program p = makeKernelProgram(SchedPolicy::DynamicFor, 1, 64);
    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};
    ExecutionEngine e(p, cfg);
    RoundRobinDriver d(e, 100);
    d.run();
    EXPECT_EQ(e.blockExecCount(p.kernels[0].workerHeader), 1u * 2u);
}

TEST(EdgeCases, ChunkLargerThanIterations)
{
    // One thread grabs everything in a single chunk; the rest probe
    // the empty counter and head to the barrier.
    Program p = makeKernelProgram(SchedPolicy::DynamicFor, 10, 1000);
    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};
    ExecutionEngine e(p, cfg);
    RoundRobinDriver d(e, 100);
    d.run();
    EXPECT_EQ(e.blockExecCount(p.kernels[0].workerHeader), 10u * 2u);
    // Every thread executes at least one chunk-fetch probe per
    // kernel instance.
    EXPECT_GE(e.blockExecCount(p.runtime.chunkFetch), 4u * 2u);
}

TEST(EdgeCases, MasterPrologueRunsOncePerInstanceOnThreadZero)
{
    Program p = makeKernelProgram(SchedPolicy::StaticFor, 16, 4, true);
    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};
    ExecutionEngine e(p, cfg);
    RoundRobinDriver d(e, 100);
    d.run();
    EXPECT_EQ(e.blockExecCount(p.kernels[0].masterPrologue), 2u);
}

TEST(EdgeCases, ReductionTailRunsOncePerThreadPerInstance)
{
    Program p = makeKernelProgram(SchedPolicy::StaticFor, 16, 4, false,
                                  true);
    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};
    ExecutionEngine e(p, cfg);
    RoundRobinDriver d(e, 100);
    d.run();
    EXPECT_EQ(e.blockExecCount(p.kernels[0].reductionTail), 4u * 2u);
    EXPECT_EQ(e.blockExecCount(p.runtime.atomicStub), 4u * 2u);
}

TEST(EdgeCases, SoloThreadNeverWaits)
{
    Program p = makeKernelProgram(SchedPolicy::StaticFor, 8);
    for (auto policy : {WaitPolicy::Passive, WaitPolicy::Active}) {
        ExecConfig cfg{.numThreads = 1, .waitPolicy = policy};
        ExecutionEngine e(p, cfg);
        RoundRobinDriver d(e, 100);
        d.run();
        EXPECT_EQ(e.blockExecCount(p.runtime.spinWait), 0u);
        EXPECT_EQ(e.blockExecCount(p.runtime.futexWait), 0u);
    }
}

TEST(EdgeCases, FutexOncePerWaitEpisode)
{
    // Passive waiters issue one futex call per wait episode, not one
    // per scheduling quantum.
    Program p = makeKernelProgram(SchedPolicy::StaticFor, 4);
    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};
    ExecutionEngine e(p, cfg);
    RoundRobinDriver d(e, 10); // tiny quanta: many reschedules
    d.run();
    // At most (threads - 1) waiters per barrier x 2 instances, plus
    // kernel-entry waits; never more than a small multiple.
    EXPECT_LE(e.blockExecCount(p.runtime.futexWait), 4u * 2u * 2u);
    EXPECT_GT(e.blockExecCount(p.runtime.futexWait), 0u);
}

TEST(EdgeCases, BarrierCountsExact)
{
    Program p = makeKernelProgram(SchedPolicy::StaticFor, 8);
    ExecConfig cfg{.numThreads = 6, .waitPolicy = WaitPolicy::Active};
    ExecutionEngine e(p, cfg);
    RoundRobinDriver d(e, 50);
    d.run();
    // Every thread enters and exits each instance's barrier once.
    EXPECT_EQ(e.blockExecCount(p.runtime.barrierEnter), 6u * 2u);
    EXPECT_EQ(e.blockExecCount(p.runtime.barrierExit), 6u * 2u);
}

TEST(EdgeCases, ZeroThreadsRejected)
{
    Program p = makeKernelProgram(SchedPolicy::StaticFor, 4);
    ExecConfig cfg{.numThreads = 0};
    EXPECT_THROW(ExecutionEngine(p, cfg), FatalError);
}

TEST(EdgeCases, StepAfterFinishReportsFinished)
{
    Program p = makeKernelProgram(SchedPolicy::StaticFor, 2);
    ExecConfig cfg{.numThreads = 1};
    ExecutionEngine e(p, cfg);
    RoundRobinDriver d(e, 100);
    d.run();
    StepResult r = e.step(0);
    EXPECT_EQ(r.kind, StepResult::Kind::Finished);
    r = e.step(0);
    EXPECT_EQ(r.kind, StepResult::Kind::Finished);
}

TEST(EdgeCases, ManyThreadsHeavyContention)
{
    // 16 threads hammering one lock still completes and preserves
    // critical-section exclusivity counts.
    ProgramBuilder b("contend", 79);
    uint32_t k = b.beginKernel("k", SchedPolicy::DynamicFor, 64, 1);
    b.addCritical(0, {.numInstrs = 8, .streams = {}});
    b.endKernel();
    b.runKernels({k}, 1);
    Program p = b.build();

    ExecConfig cfg{.numThreads = 16, .waitPolicy = WaitPolicy::Active};
    ExecutionEngine e(p, cfg);
    RoundRobinDriver d(e, 20);
    d.run();
    const auto &item = p.kernels[0].body.front();
    EXPECT_EQ(e.blockExecCount(item.blocks[1]), 64u);
}

} // namespace
} // namespace looppoint
