/**
 * @file
 * ArtifactAudit tests: a clean end-to-end pipeline run must audit with
 * zero findings, and every artifact fault class — tampered markers,
 * broken Eq. 2 weight closure, corrupt pinball and region-pinball
 * frames, journal mismatches, and store hash/stage-chain damage — must
 * be flagged with the exact diagnostic, all without re-running
 * simulation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/artifact_audit.hh"
#include "analysis/registry.hh"
#include "core/experiment.hh"
#include "core/looppoint.hh"
#include "core/region_checkpoint.hh"
#include "core/run_journal.hh"
#include "dcfg/dcfg.hh"
#include "pinball/pinball.hh"
#include "store/artifact_store.hh"
#include "util/fault.hh"
#include "util/sha1.hh"
#include "workload/descriptor.hh"

namespace looppoint {
namespace {

bool
hasDiag(const std::vector<Diagnostic> &diags, Severity sev,
        const std::string &substr)
{
    return std::any_of(
        diags.begin(), diags.end(), [&](const Diagnostic &d) {
            return d.severity == sev && d.pass == "audit" &&
                   d.message.find(substr) != std::string::npos;
        });
}

/** One completed analysis over the demo app, shared by the tests. */
struct PipelineFixture
{
    AppDescriptor app;
    Program prog;
    LoopPointOptions opts;
    LoopPointResult result;
    Dcfg dcfg;

    PipelineFixture()
        : app(demoMatrixApp()),
          prog(generateProgram(app, InputClass::Test)),
          opts(makeOpts()),
          result(LoopPointPipeline(prog, opts).analyze()),
          dcfg(buildDcfg())
    {
    }

    static LoopPointOptions
    makeOpts()
    {
        LoopPointOptions o;
        o.numThreads = 4;
        // Small slices so the demo run spans several of them and the
        // interior boundaries carry real (pc, count) markers.
        o.sliceSizePerThread = 5'000;
        return o;
    }

    Dcfg
    buildDcfg()
    {
        DcfgBuilder builder(prog, opts.numThreads);
        replayPinball(prog, result.pinball, opts.flowQuantum,
                      &builder);
        return builder.build();
    }
};

const PipelineFixture &
fixture()
{
    static PipelineFixture f;
    return f;
}

AuditContext
baseContext(const PipelineFixture &f)
{
    AuditContext ctx;
    ctx.prog = &f.prog;
    ctx.dcfg = &f.dcfg;
    ctx.pinball = &f.result.pinball;
    ctx.result = &f.result;
    ctx.app = &f.app;
    ctx.input = InputClass::Test;
    ctx.opts = &f.opts;
    ctx.expectedThreads = f.opts.numThreads;
    return ctx;
}

/** A fresh, empty scratch directory under the test tmpdir. */
std::string
freshDir(const std::string &name)
{
    std::string dir = testing::TempDir() + "lp_audit_" + name;
    std::string cmd = "rm -rf '" + dir + "'";
    EXPECT_EQ(std::system(cmd.c_str()), 0);
    return dir;
}

TEST(ArtifactAudit, CleanPipelineHasZeroFindings)
{
    const PipelineFixture &f = fixture();
    AuditContext ctx = baseContext(f);
    DiagnosticSink sink;
    const size_t findings = runArtifactAudit(ctx, sink);
    EXPECT_EQ(findings, 0u);
    for (const auto &d : sink.diagnostics())
        EXPECT_EQ(d.severity, Severity::Info) << d.message;
    EXPECT_TRUE(hasDiag(sink.diagnostics(), Severity::Info,
                        "artifact sub-check(s) run"));
}

TEST(ArtifactAudit, FlagsMarkerOutsideDcfgProfile)
{
    const PipelineFixture &f = fixture();
    ASSERT_FALSE(f.result.regions.empty());
    LoopPointResult tampered = f.result;
    tampered.regions[0].start.pc += 2; // no longer a loop-header pc
    AuditContext ctx = baseContext(f);
    ctx.result = &tampered;
    ctx.app = nullptr; // isolate the marker check from region export
    DiagnosticSink sink;
    runArtifactAudit(ctx, sink);
    EXPECT_TRUE(hasDiag(sink.diagnostics(), Severity::Error,
                        "is not a main-image loop header"));
}

TEST(ArtifactAudit, FlagsMarkerCountBeyondProfile)
{
    const PipelineFixture &f = fixture();
    LoopPointResult tampered = f.result;
    ASSERT_FALSE(tampered.slices.empty());
    // Find any non-boundary marker to inflate: region ends are loop
    // headers even when every slice boundary is a program sentinel.
    bool tampered_any = false;
    auto inflate = [&](Marker &m) {
        if (tampered_any || m.isProgramBoundary())
            return;
        m.count = 1u << 30;
        tampered_any = true;
    };
    for (auto &s : tampered.slices) {
        inflate(s.start);
        inflate(s.end);
    }
    for (auto &r : tampered.regions) {
        inflate(r.start);
        inflate(r.end);
    }
    ASSERT_TRUE(tampered_any);
    AuditContext ctx = baseContext(f);
    ctx.result = &tampered;
    ctx.app = nullptr;
    DiagnosticSink sink;
    runArtifactAudit(ctx, sink);
    EXPECT_TRUE(hasDiag(sink.diagnostics(), Severity::Error,
                        "outside the profiled execution count"));
}

TEST(ArtifactAudit, FlagsBrokenWeightClosure)
{
    const PipelineFixture &f = fixture();
    LoopPointResult tampered = f.result;
    ASSERT_FALSE(tampered.regions.empty());
    tampered.regions[0].multiplier *= 1.5; // Eq. 2 no longer closes
    AuditContext ctx = baseContext(f);
    ctx.result = &tampered;
    ctx.app = nullptr;
    DiagnosticSink sink;
    runArtifactAudit(ctx, sink);
    EXPECT_TRUE(hasDiag(sink.diagnostics(), Severity::Error,
                        "Eq. 2 multiplier"));
    EXPECT_TRUE(hasDiag(sink.diagnostics(), Severity::Error,
                        "cluster weights sum to"));
}

TEST(ArtifactAudit, FlagsDanglingRegionReferences)
{
    const PipelineFixture &f = fixture();
    LoopPointResult tampered = f.result;
    ASSERT_FALSE(tampered.regions.empty());
    tampered.regions[0].sliceIndex =
        static_cast<uint32_t>(tampered.slices.size() + 7);
    AuditContext ctx = baseContext(f);
    ctx.result = &tampered;
    ctx.app = nullptr;
    DiagnosticSink sink;
    runArtifactAudit(ctx, sink);
    EXPECT_TRUE(hasDiag(sink.diagnostics(), Severity::Error,
                        "out of range"));
}

TEST(ArtifactAudit, FlagsThreadRosterMismatch)
{
    const PipelineFixture &f = fixture();
    AuditContext ctx = baseContext(f);
    ctx.result = nullptr;
    ctx.app = nullptr;
    ctx.expectedThreads = f.opts.numThreads + 2;
    DiagnosticSink sink;
    runArtifactAudit(ctx, sink);
    EXPECT_TRUE(hasDiag(sink.diagnostics(), Severity::Error,
                        "but the run is configured for"));
}

TEST(ArtifactAudit, FlagsCorruptPinballArtifactOnDisk)
{
    const PipelineFixture &f = fixture();
    const std::string dir = freshDir("pinball");
    ASSERT_EQ(std::system(("mkdir -p '" + dir + "'").c_str()), 0);
    const std::string path = dir + "/whole.pinball";
    {
        std::ostringstream os;
        f.result.pinball.save(os);
        std::string bytes = os.str();
        // The --inject-fault corrupt: class: XOR one payload byte.
        FaultPlan plan = FaultPlan::parse("corrupt:byte=64");
        plan.corrupt(bytes);
        std::ofstream out(path, std::ios::binary);
        out << bytes;
    }
    AuditContext ctx;
    ctx.prog = &f.prog;
    ctx.pinballPath = path;
    DiagnosticSink sink;
    runArtifactAudit(ctx, sink);
    EXPECT_TRUE(hasDiag(sink.diagnostics(), Severity::Error,
                        "artifact does not parse"));

    // And a missing artifact is its own finding.
    AuditContext missing;
    missing.prog = &f.prog;
    missing.pinballPath = dir + "/nonexistent.pinball";
    DiagnosticSink sink2;
    runArtifactAudit(missing, sink2);
    EXPECT_TRUE(hasDiag(sink2.diagnostics(), Severity::Error,
                        "cannot be opened"));
}

TEST(ArtifactAudit, FlagsJournalKeyAndRegionMismatches)
{
    const PipelineFixture &f = fixture();
    const std::string dir = freshDir("journal");
    ASSERT_EQ(std::system(("mkdir -p '" + dir + "'").c_str()), 0);
    const std::string path = dir + "/run.journal";

    SimConfig sim_cfg;
    RunKey key = makeRunKey(f.app.name, "test", f.opts.numThreads,
                            f.opts.waitPolicy, f.opts.seed, false,
                            sim_cfg);
    ASSERT_FALSE(f.result.regions.empty());
    {
        RunJournal journal(path, key);
        ASSERT_FALSE(journal.load(false).has_value());
        RunJournal::Record rec;
        rec.regionIndex = 0;
        rec.start = f.result.regions[0].start;
        rec.end = f.result.regions[0].end;
        rec.multiplier = f.result.regions[0].multiplier;
        rec.attempts = 1;
        journal.append(rec);
    }

    // Clean journal, matching key: no findings.
    AuditContext ctx;
    ctx.prog = &f.prog;
    ctx.result = &f.result;
    ctx.journalPath = path;
    ctx.journalKey = &key;
    DiagnosticSink clean;
    EXPECT_EQ(runArtifactAudit(ctx, clean), 0u);

    // A journal written under a different run key must not validate.
    RunKey other = key;
    other.seed = key.seed + 1;
    ctx.journalKey = &other;
    DiagnosticSink mismatched;
    runArtifactAudit(ctx, mismatched);
    EXPECT_TRUE(hasDiag(mismatched.diagnostics(), Severity::Error,
                        "journal does not load"));

    // A record referencing a region the analysis never selected.
    {
        RunJournal journal(path, key);
        ASSERT_FALSE(journal.load(true).has_value());
        RunJournal::Record rec;
        rec.regionIndex =
            static_cast<uint32_t>(f.result.regions.size() + 3);
        rec.start = f.result.regions[0].start;
        rec.end = f.result.regions[0].end;
        rec.multiplier = 1.0;
        rec.attempts = 1;
        journal.append(rec);
    }
    ctx.journalKey = &key;
    DiagnosticSink dangling;
    runArtifactAudit(ctx, dangling);
    EXPECT_TRUE(hasDiag(dangling.diagnostics(), Severity::Error,
                        "but the analysis selected"));

    // A record whose identity drifted from its region's.
    {
        std::string drift_path = dir + "/drift.journal";
        RunJournal journal(drift_path, key);
        ASSERT_FALSE(journal.load(false).has_value());
        RunJournal::Record rec;
        rec.regionIndex = 0;
        rec.start = f.result.regions[0].start;
        rec.end = f.result.regions[0].end;
        rec.multiplier = f.result.regions[0].multiplier + 0.25;
        rec.attempts = 1;
        journal.append(rec);
        ctx.journalPath = drift_path;
        DiagnosticSink drifted;
        runArtifactAudit(ctx, drifted);
        EXPECT_TRUE(hasDiag(drifted.diagnostics(), Severity::Error,
                            "does not match the region's identity"));
    }
}

TEST(ArtifactAudit, FlagsCorruptStoreObjectsAndBrokenChains)
{
    const std::string dir = freshDir("store");
    std::string record_hash, profile_hash;
    {
        ArtifactStore store(dir);
        record_hash =
            store.publish("record", "record-v1;prog=demo;threads=4;",
                          "recording-bytes");
        profile_hash = store.publish(
            "profile",
            "profile-v1;record=" + record_hash + ";slice_size=100;",
            "profile-bytes");
        store.publish("cluster",
                      "cluster-v1;profile=" + profile_hash +
                          ";max_k=50;",
                      "cluster-bytes");
    }

    // Intact store: zero findings.
    AuditContext ctx;
    ctx.storeDir = dir;
    DiagnosticSink clean;
    EXPECT_EQ(runArtifactAudit(ctx, clean), 0u);

    // Corrupt one object payload on disk (the corrupt: fault class).
    {
        const std::string obj = dir + "/objects/" + record_hash;
        std::fstream f(obj,
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.good()) << obj;
        f.seekp(-3, std::ios::end);
        f.put('!');
    }
    DiagnosticSink corrupt;
    runArtifactAudit(ctx, corrupt);
    EXPECT_TRUE(hasDiag(corrupt.diagnostics(), Severity::Error,
                        "failed hash verification"));

    // An incomplete chain: a profile entry referencing a record hash
    // with no manifest binding.
    const std::string dir2 = freshDir("chain");
    {
        ArtifactStore store(dir2);
        store.publish("profile",
                      "profile-v1;record=" + std::string(40, 'a') +
                          ";slice_size=100;",
                      "orphan-profile");
    }
    AuditContext ctx2;
    ctx2.storeDir = dir2;
    DiagnosticSink orphan;
    runArtifactAudit(ctx2, orphan);
    EXPECT_TRUE(hasDiag(orphan.diagnostics(), Severity::Error,
                        "incomplete stage-key chain"));

    // A cyclic chain: a record-stage entry claiming a cluster-stage
    // upstream (the hash is bound at an equal-or-later rank).
    const std::string dir3 = freshDir("cycle");
    {
        ArtifactStore store(dir3);
        const std::string h =
            store.publish("cluster", "cluster-v1;max_k=50;", "c-bytes");
        store.publish("record", "record-v1;cluster=" + h + ";",
                      "r-bytes");
    }
    AuditContext ctx3;
    ctx3.storeDir = dir3;
    DiagnosticSink cyclic;
    runArtifactAudit(ctx3, cyclic);
    EXPECT_TRUE(hasDiag(cyclic.diagnostics(), Severity::Error,
                        "not acyclic"));
}

TEST(ArtifactAudit, RegistryRunsAuditBehindItsPassName)
{
    const PipelineFixture &f = fixture();
    AnalysisContext ctx;
    ctx.lint.prog = &f.prog;
    ctx.audit = baseContext(f);
    ctx.audit.app = nullptr; // keep the registry run cheap
    DiagnosticSink sink;
    size_t errs = runAnalyses(ctx, sink, {"audit"});
    EXPECT_EQ(errs, 0u);
    bool have_audit_info = false;
    for (const auto &d : sink.diagnostics()) {
        EXPECT_EQ(d.pass, "audit") << d.message;
        have_audit_info |= d.severity == Severity::Info;
    }
    EXPECT_TRUE(have_audit_info);
}

} // namespace
} // namespace looppoint
