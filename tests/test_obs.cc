/**
 * @file
 * The observability layer: JSON reader round-trips, deterministic
 * Chrome-trace emission under a FakeClock, ring-buffer overflow
 * accounting, sharded counter/histogram aggregation, leveled-logging
 * parsing, the resume-accounting fix in the host-parallel speedup
 * stats, and — the contract that matters most — that arming the
 * tracer and metrics registry leaves simulated results bit-identical.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "core/looppoint.hh"
#include "obs/clock.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"
#include "workload/descriptor.hh"

namespace looppoint {
namespace {

// --------------------------------------------------------------------
// JSON reader
// --------------------------------------------------------------------

TEST(ObsJson, ParsesValuesOfEveryKind)
{
    std::string err;
    auto v = parseJson(
        R"({"n": -12.5e1, "s": "a\"b\\cA", "t": true,)"
        R"( "z": null, "arr": [1, 2, 3], "obj": {"k": "v"}})",
        &err);
    ASSERT_TRUE(v.has_value()) << err;
    ASSERT_TRUE(v->isObject());
    EXPECT_DOUBLE_EQ(v->numberOr("n", 0.0), -125.0);
    EXPECT_EQ(v->stringOr("s", ""), "a\"b\\cA");
    ASSERT_NE(v->find("t"), nullptr);
    EXPECT_TRUE(v->find("t")->boolean);
    EXPECT_TRUE(v->find("z")->isNull());
    ASSERT_TRUE(v->find("arr")->isArray());
    EXPECT_EQ(v->find("arr")->array.size(), 3u);
    EXPECT_EQ(v->find("obj")->stringOr("k", ""), "v");
    // Key order is preserved as written.
    EXPECT_EQ(v->object.front().first, "n");
    EXPECT_EQ(v->object.back().first, "obj");
}

TEST(ObsJson, RejectsMalformedDocuments)
{
    std::string err;
    EXPECT_FALSE(parseJson("{\"a\": 1} trailing", &err).has_value());
    EXPECT_NE(err.find("at byte"), std::string::npos) << err;
    EXPECT_FALSE(parseJson("[1, 2,]", nullptr).has_value());
    EXPECT_FALSE(parseJson("{\"a\" 1}", nullptr).has_value());
    EXPECT_FALSE(parseJson("\"unterminated", nullptr).has_value());
    EXPECT_FALSE(parseJson("nul", nullptr).has_value());
    EXPECT_FALSE(parseJson("", nullptr).has_value());
}

TEST(ObsJson, DepthCapStopsHostileNesting)
{
    std::string deep(200, '[');
    deep += std::string(200, ']');
    EXPECT_FALSE(parseJson(deep, nullptr).has_value());
    std::string ok(64, '[');
    ok += std::string(64, ']');
    EXPECT_TRUE(parseJson(ok, nullptr).has_value());
}

TEST(ObsJson, QuoteEscapesControlAndSpecials)
{
    EXPECT_EQ(jsonQuote("a\"b\\c\n\t"), "\"a\\\"b\\\\c\\n\\t\"");
    // Escaped output must parse back to the original.
    auto v = parseJson(jsonQuote(std::string("\x01 x \x1f")), nullptr);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->str, "\x01 x \x1f");
}

// --------------------------------------------------------------------
// Tracer
// --------------------------------------------------------------------

/** Drain `tracer` and parse the emitted document. */
JsonValue
emitAndParse(Tracer &tracer)
{
    std::ostringstream os;
    tracer.writeChromeTrace(os);
    std::string err;
    auto v = parseJson(os.str(), &err);
    EXPECT_TRUE(v.has_value()) << err << "\n" << os.str();
    return v.value_or(JsonValue{});
}

/** The non-metadata events of a parsed trace, in document order. */
std::vector<const JsonValue *>
spanEvents(const JsonValue &doc)
{
    std::vector<const JsonValue *> out;
    const JsonValue *evs = doc.find("traceEvents");
    if (!evs)
        return out;
    for (const JsonValue &e : evs->array)
        if (e.stringOr("ph", "") != "M")
            out.push_back(&e);
    return out;
}

TEST(ObsTrace, FakeClockYieldsDeterministicNestedSpans)
{
    FakeClock clock;
    clock.setNs(1'000'000);
    Tracer tracer(&clock);
    tracer.setEnabled(true);
    tracer.nameCurrentThread("main");
    {
        ScopedSpan outer(tracer, "outer");
        outer.arg("region", 7);
        clock.advanceNs(500'000);
        {
            ScopedSpan inner(tracer, "inner");
            clock.advanceNs(250'000);
        }
        clock.advanceNs(250'000);
    }

    JsonValue doc = emitAndParse(tracer);
    auto evs = spanEvents(doc);
    ASSERT_EQ(evs.size(), 2u);
    // Sorted for nesting: the enclosing span first despite being
    // recorded last (it destructs after its child).
    EXPECT_EQ(evs[0]->stringOr("name", ""), "outer");
    EXPECT_DOUBLE_EQ(evs[0]->numberOr("ts", 0), 1000.0);
    EXPECT_DOUBLE_EQ(evs[0]->numberOr("dur", 0), 1000.0);
    EXPECT_EQ(evs[1]->stringOr("name", ""), "inner");
    EXPECT_DOUBLE_EQ(evs[1]->numberOr("ts", 0), 1500.0);
    EXPECT_DOUBLE_EQ(evs[1]->numberOr("dur", 0), 250.0);
    ASSERT_NE(evs[0]->find("args"), nullptr);
    EXPECT_DOUBLE_EQ(evs[0]->find("args")->numberOr("region", -1), 7.0);

    // Identical activity replayed at identical fake times must emit a
    // byte-identical document (the contract golden tests rely on).
    std::ostringstream first, second;
    for (std::ostringstream *os : {&first, &second}) {
        clock.setNs(1'000'000);
        {
            ScopedSpan outer(tracer, "outer");
            outer.arg("region", 7);
            clock.advanceNs(500'000);
            {
                ScopedSpan inner(tracer, "inner");
                clock.advanceNs(250'000);
            }
            clock.advanceNs(250'000);
        }
        tracer.writeChromeTrace(*os);
    }
    EXPECT_EQ(first.str(), second.str());
}

TEST(ObsTrace, EqualTimestampsSortLongerSpanFirst)
{
    FakeClock clock;
    Tracer tracer(&clock);
    tracer.setEnabled(true);
    {
        ScopedSpan outer(tracer, "outer");
        ScopedSpan inner(tracer, "inner");
        clock.advanceNs(10'000);
        inner.finish();
        clock.advanceNs(10'000);
    }
    JsonValue doc = emitAndParse(tracer);
    auto evs = spanEvents(doc);
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_EQ(evs[0]->stringOr("name", ""), "outer");
    EXPECT_EQ(evs[1]->stringOr("name", ""), "inner");
}

TEST(ObsTrace, DisabledTracerIsInert)
{
    FakeClock clock;
    Tracer tracer(&clock);
    {
        ScopedSpan span(tracer, "never");
        EXPECT_FALSE(span.active());
        span.arg("k", 1);
    }
    tracer.instant("nope");
    ScopedSpan null_span(nullptr, "also never");
    EXPECT_FALSE(null_span.active());
    EXPECT_EQ(tracer.pendingEvents(), 0u);
    EXPECT_EQ(tracer.droppedEvents(), 0u);
}

TEST(ObsTrace, RingOverflowDropsOldestAndCounts)
{
    FakeClock clock;
    Tracer tracer(&clock, /*ring_capacity=*/4);
    tracer.setEnabled(true);
    for (int i = 0; i < 6; ++i) {
        clock.advanceNs(1'000);
        tracer.instant("ev" + std::to_string(i));
    }
    EXPECT_EQ(tracer.pendingEvents(), 4u);
    EXPECT_EQ(tracer.droppedEvents(), 2u);

    JsonValue doc = emitAndParse(tracer);
    auto evs = spanEvents(doc);
    ASSERT_EQ(evs.size(), 4u);
    // The oldest two were overwritten; survivors stay chronological.
    EXPECT_EQ(evs[0]->stringOr("name", ""), "ev2");
    EXPECT_EQ(evs[3]->stringOr("name", ""), "ev5");
    const JsonValue *other = doc.find("otherData");
    ASSERT_NE(other, nullptr);
    EXPECT_DOUBLE_EQ(other->numberOr("dropped_events", 0), 2.0);
    // The drain resets the drop accounting.
    EXPECT_EQ(tracer.droppedEvents(), 0u);
}

TEST(ObsTrace, InstantEventsAndArgEscaping)
{
    FakeClock clock;
    clock.setNs(5'000);
    Tracer tracer(&clock);
    tracer.setEnabled(true);
    tracer.nameCurrentThread("na\"me");
    tracer.instant("hit", {{"path", "a\\b\"c", /*quoted=*/true}});

    JsonValue doc = emitAndParse(tracer);
    auto evs = spanEvents(doc);
    ASSERT_EQ(evs.size(), 1u);
    EXPECT_EQ(evs[0]->stringOr("ph", ""), "i");
    EXPECT_EQ(evs[0]->stringOr("s", ""), "t");
    EXPECT_DOUBLE_EQ(evs[0]->numberOr("ts", 0), 5.0);
    EXPECT_EQ(evs[0]->find("args")->stringOr("path", ""), "a\\b\"c");
}

TEST(ObsTrace, MirroredSpanLandsOnIdempotentVirtualTrack)
{
    FakeClock clock;
    Tracer tracer(&clock);
    tracer.setEnabled(true);
    tracer.nameCurrentThread("main");
    uint32_t track = tracer.virtualTrack("region 3");
    EXPECT_EQ(tracer.virtualTrack("region 3"), track);
    {
        ScopedSpan span(tracer, "region.sim");
        span.mirror(track).arg("region", 3);
        clock.advanceNs(2'000);
    }
    JsonValue doc = emitAndParse(tracer);
    auto evs = spanEvents(doc);
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_NE(evs[0]->numberOr("tid", -1), evs[1]->numberOr("tid", -1));
    EXPECT_EQ(evs[0]->stringOr("name", ""), evs[1]->stringOr("name", ""));
    EXPECT_DOUBLE_EQ(evs[0]->numberOr("ts", -1),
                     evs[1]->numberOr("ts", -2));
    // Exactly one copy is marked as the mirror, so reporting tools
    // can aggregate without double counting.
    int mirrors = 0;
    for (const JsonValue *e : evs)
        if (e->find("args") && e->find("args")->find("mirror"))
            ++mirrors;
    EXPECT_EQ(mirrors, 1);
}

TEST(ObsTrace, NonFiniteDoubleArgsStayParseable)
{
    FakeClock clock;
    Tracer tracer(&clock);
    tracer.setEnabled(true);
    {
        ScopedSpan span(tracer, "s");
        span.arg("ipc", 1.5);
        span.arg("bad", std::numeric_limits<double>::infinity());
    }
    JsonValue doc = emitAndParse(tracer);
    auto evs = spanEvents(doc);
    ASSERT_EQ(evs.size(), 1u);
    EXPECT_DOUBLE_EQ(evs[0]->find("args")->numberOr("ipc", 0), 1.5);
    EXPECT_TRUE(evs[0]->find("args")->find("bad")->isString());
}

// --------------------------------------------------------------------
// Metrics
// --------------------------------------------------------------------

TEST(ObsMetrics, CounterAggregatesAcrossThreads)
{
    MetricsRegistry reg;
    reg.setEnabled(true);
    Counter &c = reg.counter("test.hits");
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&c] {
            for (int i = 0; i < 1000; ++i)
                c.add();
        });
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(c.value(), 8000u);
}

TEST(ObsMetrics, HistogramBucketBoundariesAreInclusive)
{
    MetricsRegistry reg;
    reg.setEnabled(true);
    Histogram &h = reg.histogram("test.lat", {10, 100});
    for (uint64_t s : {5u, 10u, 11u, 100u, 101u})
        h.observe(s);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 227u);
    // bounds are inclusive upper bounds; the last bucket is overflow.
    EXPECT_EQ(h.bucketCounts(), (std::vector<uint64_t>{2, 2, 1}));
    // Unsorted/duplicated bounds are normalized at registration.
    Histogram &h2 = reg.histogram("test.lat2", {100, 10, 100});
    EXPECT_EQ(h2.bounds(), (std::vector<uint64_t>{10, 100}));
}

TEST(ObsMetrics, JsonEmitterRoundTripsThroughParser)
{
    MetricsRegistry reg;
    reg.setEnabled(true);
    reg.counter("a.count").add(42);
    reg.gauge("b.gauge").set(2.75);
    Histogram &h = reg.histogram("c.hist", {10});
    h.observe(3);
    h.observe(30);

    std::ostringstream os;
    reg.printJson(os);
    std::string err;
    auto v = parseJson(os.str(), &err);
    ASSERT_TRUE(v.has_value()) << err << "\n" << os.str();
    EXPECT_DOUBLE_EQ(v->find("counters")->numberOr("a.count", 0), 42.0);
    EXPECT_DOUBLE_EQ(v->find("gauges")->numberOr("b.gauge", 0), 2.75);
    const JsonValue *hist = v->find("histograms")->find("c.hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_DOUBLE_EQ(hist->numberOr("count", 0), 2.0);
    EXPECT_DOUBLE_EQ(hist->numberOr("sum", 0), 33.0);
    ASSERT_TRUE(hist->find("buckets")->isArray());
    EXPECT_EQ(hist->find("buckets")->array.size(), 2u);

    // The text emitter mentions every metric by name.
    std::ostringstream text;
    reg.printText(text);
    for (const char *name : {"a.count", "b.gauge", "c.hist"})
        EXPECT_NE(text.str().find(name), std::string::npos) << name;
}

TEST(ObsMetrics, DisabledRegistryDropsUpdates)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("test.off");
    Gauge &g = reg.gauge("test.off.g");
    Histogram &h = reg.histogram("test.off.h", {10});
    c.add(5);
    g.set(1.0);
    h.observe(3);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    EXPECT_EQ(h.count(), 0u);

    reg.setEnabled(true);
    c.add(5);
    EXPECT_EQ(c.value(), 5u);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, RegistrationReturnsStableObjects)
{
    MetricsRegistry reg;
    EXPECT_EQ(&reg.counter("x"), &reg.counter("x"));
    EXPECT_EQ(&reg.gauge("y"), &reg.gauge("y"));
    Histogram &h = reg.histogram("z", {1, 2});
    // A re-registration keeps the original bounds.
    EXPECT_EQ(&reg.histogram("z", {99}), &h);
    EXPECT_EQ(h.bounds(), (std::vector<uint64_t>{1, 2}));
}

// --------------------------------------------------------------------
// Leveled logging
// --------------------------------------------------------------------

TEST(ObsLogging, ParseLogLevelNamesAndFallback)
{
    bool ok = false;
    EXPECT_EQ(parseLogLevel("quiet", &ok), LogLevel::Quiet);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseLogLevel("none", nullptr), LogLevel::Quiet);
    EXPECT_EQ(parseLogLevel("ERROR", nullptr), LogLevel::Error);
    EXPECT_EQ(parseLogLevel("Warn", nullptr), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("warning", nullptr), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("info", nullptr), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("debug", nullptr), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("bogus", &ok), LogLevel::Info);
    EXPECT_FALSE(ok);
}

TEST(ObsLogging, OverrideAndQuietMapping)
{
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setQuiet(true); // legacy switch caps at Error
    EXPECT_EQ(logLevel(), LogLevel::Error);
    setQuiet(false); // back to the environment default
    EXPECT_GE(logLevel(), LogLevel::Error);
}

// --------------------------------------------------------------------
// Host-parallel accounting (resume double-report regression)
// --------------------------------------------------------------------

TEST(ObsStats, ResumeWarmingExcludedFromSpeedup)
{
    LoopPointPipeline::CheckpointedSimResult r;
    r.checkpointWallSeconds = 10.0; // 9 s of it warmed journal hits
    r.journalWarmSeconds = 9.0;
    r.regionWallSeconds = {0.5, 1.0};
    r.phaseWallSeconds = 10.2;
    r.jobs = 2;
    // Serial equivalent counts only work that backed simulated
    // regions: (10 - 9) + 0.5 + 1.0. The old formula kept the 9 s of
    // journal-hit warming on the serial side only and reported a
    // speedup of 11.5 / 10.2 ~= 1.13 for an almost fully resumed run.
    EXPECT_DOUBLE_EQ(r.serialEquivalentSeconds(), 2.5);
    EXPECT_DOUBLE_EQ(r.hostParallelSpeedup(), 2.5 / 1.2);
    EXPECT_DOUBLE_EQ(r.parallelEfficiency(), 2.5 / 1.2 / 2.0);
}

TEST(ObsStats, FreshRunAccountingUnchanged)
{
    LoopPointPipeline::CheckpointedSimResult r;
    r.checkpointWallSeconds = 10.0;
    r.journalWarmSeconds = 0.0;
    r.regionWallSeconds = {0.5, 1.0};
    r.phaseWallSeconds = 6.0;
    r.jobs = 4;
    EXPECT_DOUBLE_EQ(r.serialEquivalentSeconds(), 11.5);
    EXPECT_DOUBLE_EQ(r.hostParallelSpeedup(), 11.5 / 6.0);
    EXPECT_DOUBLE_EQ(r.parallelEfficiency(), 11.5 / 6.0 / 4.0);
}

TEST(ObsStats, FullResumeReportsNoParallelWork)
{
    LoopPointPipeline::CheckpointedSimResult r;
    r.checkpointWallSeconds = 5.0;
    r.journalWarmSeconds = 5.0; // every region came from the journal
    r.phaseWallSeconds = 5.0;
    r.jobs = 4;
    EXPECT_DOUBLE_EQ(r.hostParallelSpeedup(), 0.0);
    EXPECT_DOUBLE_EQ(r.parallelEfficiency(), 0.0);
}

// --------------------------------------------------------------------
// Observability must not perturb simulation
// --------------------------------------------------------------------

struct PipelineOutput
{
    LoopPointResult lp;
    LoopPointPipeline::CheckpointedSimResult ckpt;
};

PipelineOutput
runPipeline()
{
    const AppDescriptor &app = findApp("628.pop2_s.1");
    LoopPointOptions opts;
    opts.numThreads = app.effectiveThreads(4);
    opts.sliceSizePerThread = 20'000;
    opts.jobs = 2;
    Program prog = generateProgram(app, InputClass::Test);
    LoopPointPipeline pipe(prog, opts);
    PipelineOutput out;
    out.lp = pipe.analyze();
    SimConfig sim_cfg;
    sim_cfg.jobs = 2;
    out.ckpt = pipe.simulateRegionsCheckpointed(out.lp, sim_cfg);
    return out;
}

TEST(ObsIsolation, SimResultsBitIdenticalWithObsOnAndOff)
{
    PipelineOutput off = runPipeline();

    Tracer &tracer = Tracer::global();
    MetricsRegistry &metrics = MetricsRegistry::global();
    tracer.setEnabled(true);
    metrics.setEnabled(true);
    PipelineOutput on = runPipeline();
    // The instrumented run must actually have produced telemetry.
    EXPECT_GT(tracer.pendingEvents(), 0u);
    EXPECT_GT(metrics.counter("region.sim.completed").value(), 0u);
    tracer.setEnabled(false);
    tracer.clear();
    metrics.setEnabled(false);
    metrics.reset();

    EXPECT_EQ(off.lp.chosenK, on.lp.chosenK);
    EXPECT_EQ(off.lp.assignment, on.lp.assignment);
    ASSERT_EQ(off.ckpt.regionMetrics.size(),
              on.ckpt.regionMetrics.size());
    for (size_t i = 0; i < off.ckpt.regionMetrics.size(); ++i) {
        const SimMetrics &a = off.ckpt.regionMetrics[i];
        const SimMetrics &b = on.ckpt.regionMetrics[i];
        EXPECT_EQ(a.cycles, b.cycles) << "region " << i;
        EXPECT_EQ(a.instructions, b.instructions) << "region " << i;
        EXPECT_EQ(a.branchMispredicts, b.branchMispredicts)
            << "region " << i;
        EXPECT_EQ(a.l1dMisses, b.l1dMisses) << "region " << i;
        EXPECT_EQ(a.l2Misses, b.l2Misses) << "region " << i;
        EXPECT_EQ(a.l3Misses, b.l3Misses) << "region " << i;
    }
    EXPECT_EQ(off.ckpt.coverage, on.ckpt.coverage);
    EXPECT_EQ(off.ckpt.journalHits, on.ckpt.journalHits);
}

} // namespace
} // namespace looppoint
