/**
 * @file
 * Tests for shareable region pinballs: export, serialization round
 * trips, checkpoint restoration at the (PC, count) boundary, and
 * simulation equivalence between a freshly-analyzed region and one
 * reloaded from its pinball.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/region_checkpoint.hh"
#include "exec/driver.hh"
#include "util/logging.hh"

namespace looppoint {
namespace {

struct Analyzed
{
    const AppDescriptor *app;
    LoopPointOptions opts;
    Program prog;
    LoopPointResult lp;
};

Analyzed
analyzeSmall(const char *name = "628.pop2_s.1")
{
    const AppDescriptor &app = findApp(name);
    LoopPointOptions opts;
    opts.numThreads = app.effectiveThreads(4);
    opts.sliceSizePerThread = 25'000;
    Program prog = generateProgram(app, InputClass::Test);
    LoopPointPipeline pipe(prog, opts);
    LoopPointResult lp = pipe.analyze();
    return {&app, opts, std::move(prog), std::move(lp)};
}

TEST(RegionPinball, ExportOnePerRegion)
{
    Analyzed a = analyzeSmall();
    auto pinballs = exportRegionPinballs(*a.app, InputClass::Test,
                                         a.opts, a.lp);
    ASSERT_EQ(pinballs.size(), a.lp.regions.size());
    for (size_t i = 0; i < pinballs.size(); ++i) {
        EXPECT_EQ(pinballs[i].start, a.lp.regions[i].start);
        EXPECT_EQ(pinballs[i].end, a.lp.regions[i].end);
        EXPECT_DOUBLE_EQ(pinballs[i].multiplier,
                         a.lp.regions[i].multiplier);
        EXPECT_EQ(pinballs[i].app, a.app->name);
    }
}

TEST(RegionPinball, SaveLoadRoundTrip)
{
    Analyzed a = analyzeSmall();
    auto pinballs = exportRegionPinballs(*a.app, InputClass::Test,
                                         a.opts, a.lp);
    ASSERT_FALSE(pinballs.empty());
    std::stringstream ss;
    pinballs.front().save(ss);
    RegionPinball loaded = RegionPinball::load(ss);
    EXPECT_EQ(pinballs.front(), loaded);
}

TEST(RegionPinball, LoadRejectsJunk)
{
    std::stringstream ss("definitely not a pinball");
    EXPECT_THROW(RegionPinball::load(ss), FatalError);
}

TEST(RegionPinball, RestoredCheckpointSitsAtBoundary)
{
    Analyzed a = analyzeSmall();
    auto pinballs = exportRegionPinballs(*a.app, InputClass::Test,
                                         a.opts, a.lp);
    // Pick a region that does not start at the program boundary.
    const RegionPinball *mid = nullptr;
    for (const auto &rp : pinballs)
        if (rp.start.pc != 0)
            mid = &rp;
    ASSERT_NE(mid, nullptr) << "need a mid-program region";

    RestoredCheckpoint rc = restoreCheckpoint(*mid);
    auto pc_index = buildPcIndex(*rc.program);
    BlockId start_block = pc_index.at(mid->start.pc);
    EXPECT_EQ(rc.checkpoint.engine.blockExecCount(start_block),
              mid->start.count);
    EXPECT_GT(rc.checkpoint.globalIcount, 0u);

    // The restored engine can run to completion.
    RoundRobinDriver driver(rc.checkpoint.engine, 500);
    driver.run();
    EXPECT_TRUE(rc.checkpoint.engine.allFinished());
}

TEST(RegionPinball, SimulationMatchesDirectRegionSimulation)
{
    Analyzed a = analyzeSmall();
    LoopPointPipeline pipe(a.prog, a.opts);
    auto pinballs = exportRegionPinballs(*a.app, InputClass::Test,
                                         a.opts, a.lp);
    SimConfig sim_cfg;
    for (size_t i = 0; i < std::min<size_t>(2, pinballs.size()); ++i) {
        SimMetrics direct =
            pipe.simulateRegion(a.lp, a.lp.regions[i], sim_cfg);
        SimMetrics from_pinball =
            simulateRegionPinball(pinballs[i], sim_cfg);
        EXPECT_EQ(direct.instructions, from_pinball.instructions);
        EXPECT_EQ(direct.cycles, from_pinball.cycles);
        EXPECT_EQ(direct.l2Misses, from_pinball.l2Misses);
    }
}

class MainCollector : public ExecListener
{
  public:
    explicit MainCollector(uint32_t n) : streams(n) {}
    void
    onBlock(uint32_t tid, BlockId block,
            const ExecutionEngine &engine) override
    {
        if (engine.program().inMainImage(block))
            streams[tid].push_back(block);
    }
    std::vector<std::vector<BlockId>> streams;
};

TEST(Elfie, SaveLoadResumesIdentically)
{
    // An ELFie restores in O(state) and must behave exactly like the
    // replay-restored checkpoint it was taken from.
    Analyzed a = analyzeSmall();
    auto pinballs = exportRegionPinballs(*a.app, InputClass::Test,
                                         a.opts, a.lp);
    const RegionPinball *mid = nullptr;
    for (const auto &rp : pinballs)
        if (rp.start.pc != 0)
            mid = &rp;
    ASSERT_NE(mid, nullptr);

    std::stringstream ss;
    saveElfie(ss, *mid);
    RestoredElfie elfie = loadElfie(ss);
    RestoredCheckpoint direct = restoreCheckpoint(*mid);

    EXPECT_EQ(elfie.engine.globalIcount(),
              direct.checkpoint.engine.globalIcount());
    EXPECT_EQ(elfie.end, mid->end);
    EXPECT_DOUBLE_EQ(elfie.multiplier, mid->multiplier);

    // Resume both to completion; the filtered streams must match.
    uint32_t threads = elfie.engine.numThreads();
    MainCollector c1(threads), c2(threads);
    RoundRobinDriver d1(elfie.engine, 300);
    d1.run(&c1);
    RoundRobinDriver d2(direct.checkpoint.engine, 300);
    d2.run(&c2);
    EXPECT_EQ(c1.streams, c2.streams);
    EXPECT_EQ(elfie.engine.globalIcount(),
              direct.checkpoint.engine.globalIcount());
}

TEST(Elfie, LoadRejectsJunk)
{
    std::stringstream ss("not an elfie");
    EXPECT_THROW(loadElfie(ss), FatalError);
}

TEST(EngineState, RoundTripMidExecution)
{
    // Engine save/load at an arbitrary mid-execution point, including
    // a deep body-walk stack.
    Analyzed a = analyzeSmall("644.nab_s.1");
    ExecConfig cfg;
    cfg.numThreads = a.opts.numThreads;
    cfg.waitPolicy = a.opts.waitPolicy;
    cfg.seed = a.opts.seed;
    ExecutionEngine eng(a.prog, cfg);
    RoundRobinDriver d(eng, 700);
    d.run(nullptr, [&] { return eng.globalIcount() > 123'456; });

    std::stringstream ss;
    eng.save(ss);
    ExecutionEngine loaded = ExecutionEngine::load(ss, a.prog);
    EXPECT_EQ(loaded.globalIcount(), eng.globalIcount());
    EXPECT_EQ(loaded.globalFilteredIcount(),
              eng.globalFilteredIcount());

    // Both continue identically.
    MainCollector c1(cfg.numThreads), c2(cfg.numThreads);
    RoundRobinDriver d1(eng, 700);
    d1.run(&c1);
    RoundRobinDriver d2(loaded, 700);
    d2.run(&c2);
    EXPECT_EQ(c1.streams, c2.streams);
}

TEST(EngineState, LoadRejectsWrongProgram)
{
    Analyzed a = analyzeSmall();
    ExecConfig cfg;
    cfg.numThreads = 2;
    ExecutionEngine eng(a.prog, cfg);
    std::stringstream ss;
    eng.save(ss);

    Program other =
        generateProgram(findApp("619.lbm_s.1"), InputClass::Test);
    EXPECT_THROW(ExecutionEngine::load(ss, other), FatalError);
}

TEST(RegionPinball, RestoreRejectsUnknownApp)
{
    RegionPinball rp;
    rp.app = "no-such-app";
    EXPECT_THROW(restoreCheckpoint(rp), FatalError);
}

} // namespace
} // namespace looppoint
