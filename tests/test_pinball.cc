/**
 * @file
 * Tests for the pinball record/replay substrate: deterministic replay
 * under different schedulers, serialization round trips, and error
 * detection for mismatched replays.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "exec/driver.hh"
#include "isa/program_builder.hh"
#include "pinball/pinball.hh"
#include "util/logging.hh"

namespace looppoint {
namespace {

class MainImageCollector : public ExecListener
{
  public:
    explicit MainImageCollector(uint32_t n) : streams(n) {}

    void
    onBlock(uint32_t tid, BlockId block,
            const ExecutionEngine &engine) override
    {
        if (engine.program().inMainImage(block))
            streams[tid].push_back(block);
    }

    std::vector<std::vector<BlockId>> streams;
};

Program
makeContendedProgram()
{
    ProgramBuilder b("contended", 21);
    uint32_t k0 = b.beginKernel("dyn", SchedPolicy::DynamicFor, 120, 4);
    b.addStream({.footprintBytes = 1 << 16, .strideBytes = 8});
    b.addBlock({.numInstrs = 30, .fracMem = 0.3, .streams = {0}});
    b.addCritical(0, {.numInstrs = 10, .streams = {0}});
    b.endKernel();
    uint32_t k1 = b.beginKernel("stat", SchedPolicy::StaticFor, 80);
    b.addStream({.footprintBytes = 1 << 16, .strideBytes = 8});
    b.addCond({.numInstrs = 6, .streams = {}},
              {.numInstrs = 18, .streams = {0}},
              {.numInstrs = 9, .streams = {0}},
              {.numInstrs = 4, .streams = {}}, 0.3);
    b.addCritical(1, {.numInstrs = 8, .streams = {0}});
    b.endKernel();
    b.runKernels({k0, k1}, 3);
    return b.build();
}

TEST(Pinball, RecordCapturesSyncResolutions)
{
    Program p = makeContendedProgram();
    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};
    Pinball pb = recordPinball(p, cfg, 200);
    EXPECT_EQ(pb.programName, p.name);
    ASSERT_EQ(pb.log.lockOrder.size(), 2u);
    // One lock-0 acquisition per dyn-kernel iteration (120 x 3 runs).
    EXPECT_EQ(pb.log.lockOrder[0].size(), 120u * 3u);
    EXPECT_EQ(pb.log.lockOrder[1].size(), 80u * 3u);
    // Dynamic chunks: 120 iters / chunk 4 = 30 grants per instance.
    size_t grants = 0;
    for (const auto &row : pb.log.chunkOrder)
        grants += row.size();
    EXPECT_EQ(grants, 30u * 3u);
    EXPECT_EQ(pb.threadIcounts.size(), 4u);
}

TEST(Pinball, ReplayReproducesMainImageStreamsUnderOtherScheduler)
{
    // Record with one flow-control quantum, replay with a very
    // different one; the per-thread main-image block streams must be
    // identical (the PinPlay reproducibility property).
    Program p = makeContendedProgram();
    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};

    MainImageCollector rec_streams(4);
    Pinball pb = recordPinball(p, cfg, 1000, &rec_streams);

    MainImageCollector rep_streams(4);
    replayPinball(p, pb, 37, &rep_streams);

    EXPECT_EQ(rec_streams.streams, rep_streams.streams);
}

TEST(Pinball, ReplayMatchesUnderActivePolicy)
{
    Program p = makeContendedProgram();
    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Active};

    MainImageCollector rec_streams(4);
    Pinball pb = recordPinball(p, cfg, 500, &rec_streams);

    MainImageCollector rep_streams(4);
    replayPinball(p, pb, 91, &rep_streams);

    EXPECT_EQ(rec_streams.streams, rep_streams.streams);
}

TEST(Pinball, SaveLoadRoundTrip)
{
    Program p = makeContendedProgram();
    ExecConfig cfg{.numThreads = 3, .waitPolicy = WaitPolicy::Active};
    Pinball pb = recordPinball(p, cfg, 300);

    std::stringstream ss;
    pb.save(ss);
    Pinball loaded = Pinball::load(ss);
    EXPECT_EQ(pb, loaded);
}

TEST(Pinball, LoadRejectsJunk)
{
    std::stringstream ss("not a pinball at all");
    EXPECT_THROW(Pinball::load(ss), FatalError);
}

TEST(Pinball, ReplayRejectsWrongProgram)
{
    Program p = makeContendedProgram();
    ExecConfig cfg{.numThreads = 2, .waitPolicy = WaitPolicy::Passive};
    Pinball pb = recordPinball(p, cfg, 100);

    ProgramBuilder b("other", 5);
    uint32_t k = b.beginKernel("k", SchedPolicy::StaticFor, 8);
    b.addBlock({.numInstrs = 8, .streams = {}});
    b.endKernel();
    b.runKernels({k});
    Program other = b.build();

    EXPECT_THROW(replayPinball(other, pb, 100), FatalError);
}

TEST(Pinball, ReplayIsDeterministicAcrossRepeats)
{
    Program p = makeContendedProgram();
    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};
    Pinball pb = recordPinball(p, cfg, 450);

    MainImageCollector s1(4), s2(4);
    replayPinball(p, pb, 77, &s1);
    replayPinball(p, pb, 77, &s2);
    EXPECT_EQ(s1.streams, s2.streams);
}

TEST(Pinball, CheckpointStructHoldsEngineSnapshot)
{
    Program p = makeContendedProgram();
    ExecConfig cfg{.numThreads = 2, .waitPolicy = WaitPolicy::Passive};
    ExecutionEngine e(p, cfg);
    RoundRobinDriver d(e, 100);
    d.run(nullptr, [&] { return e.globalIcount() > 2000; });

    Checkpoint ckpt{e, e.globalIcount(), e.globalFilteredIcount()};
    EXPECT_EQ(ckpt.globalIcount, ckpt.engine.globalIcount());

    // Resuming the checkpoint finishes the program.
    RoundRobinDriver d2(ckpt.engine, 100);
    d2.run();
    EXPECT_TRUE(ckpt.engine.allFinished());
}

} // namespace
} // namespace looppoint
