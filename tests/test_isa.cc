/**
 * @file
 * Unit tests for the virtual ISA and ProgramBuilder lowering.
 */

#include <gtest/gtest.h>

#include "isa/program.hh"
#include "isa/program_builder.hh"
#include "util/logging.hh"

namespace looppoint {
namespace {

Program
makeTinyProgram()
{
    ProgramBuilder b("tiny", 1);
    uint32_t k = b.beginKernel("k0", SchedPolicy::StaticFor, 16);
    b.addStream({.footprintBytes = 1 << 16, .strideBytes = 8});
    b.addBlock({.numInstrs = 32, .fracMem = 0.4, .streams = {0}});
    b.beginInnerLoop(4);
    b.addBlock({.numInstrs = 16, .fracMem = 0.5, .streams = {0}});
    b.endInnerLoop();
    b.endKernel();
    b.runKernels({k}, 3);
    return b.build();
}

TEST(ProgramBuilder, ProducesValidProgram)
{
    Program p = makeTinyProgram();
    EXPECT_EQ(p.kernels.size(), 1u);
    EXPECT_EQ(p.runList.size(), 3u);
    EXPECT_GT(p.numBlocks(), 8u);
    p.validate(); // panics on corruption
}

TEST(ProgramBuilder, ImagesHaveDistinctBases)
{
    Program p = makeTinyProgram();
    ASSERT_EQ(p.images.size(), kNumImages);
    EXPECT_NE(p.images[0].base, p.images[1].base);
    EXPECT_NE(p.images[1].base, p.images[2].base);
}

TEST(ProgramBuilder, PcsAreUniqueAndImageLocal)
{
    Program p = makeTinyProgram();
    std::vector<Addr> pcs;
    for (const auto &bb : p.blocks) {
        pcs.push_back(bb.pc);
        Addr base = p.images[static_cast<size_t>(bb.image)].base;
        EXPECT_GE(bb.pc, base);
    }
    std::sort(pcs.begin(), pcs.end());
    EXPECT_EQ(std::adjacent_find(pcs.begin(), pcs.end()), pcs.end())
        << "block PCs must be unique";
}

TEST(ProgramBuilder, RuntimeBlocksLiveInLibraryImages)
{
    Program p = makeTinyProgram();
    EXPECT_EQ(p.blocks[p.runtime.spinWait].image, ImageId::LibIomp);
    EXPECT_EQ(p.blocks[p.runtime.barrierEnter].image, ImageId::LibIomp);
    EXPECT_EQ(p.blocks[p.runtime.chunkFetch].image, ImageId::LibIomp);
    EXPECT_EQ(p.blocks[p.runtime.lockAcquire].image, ImageId::LibIomp);
    EXPECT_EQ(p.blocks[p.runtime.futexWait].image, ImageId::LibC);
    EXPECT_FALSE(p.inMainImage(p.runtime.spinWait));
}

TEST(ProgramBuilder, WorkerHeaderIsMainImageLoopEntry)
{
    Program p = makeTinyProgram();
    const auto &k = p.kernels[0];
    EXPECT_TRUE(p.inMainImage(k.workerHeader));
    EXPECT_TRUE(p.blocks[k.workerHeader].endsWithBranch());
    EXPECT_TRUE(p.blocks[k.workerLatch].endsWithBranch());
}

TEST(ProgramBuilder, DeterministicForSameSeed)
{
    Program a = makeTinyProgram();
    Program b = makeTinyProgram();
    ASSERT_EQ(a.numBlocks(), b.numBlocks());
    for (size_t i = 0; i < a.numBlocks(); ++i) {
        EXPECT_EQ(a.blocks[i].pc, b.blocks[i].pc);
        ASSERT_EQ(a.blocks[i].instrs.size(), b.blocks[i].instrs.size());
        for (size_t j = 0; j < a.blocks[i].instrs.size(); ++j)
            EXPECT_EQ(a.blocks[i].instrs[j].op, b.blocks[i].instrs[j].op);
    }
}

TEST(ProgramBuilder, InstrMixRoughlyMatchesSpec)
{
    ProgramBuilder b("mix", 9);
    uint32_t k = b.beginKernel("k", SchedPolicy::StaticFor, 1);
    b.addBlock({.numInstrs = 2000, .fracMem = 0.5, .streams = {}});
    b.endKernel();
    b.runKernels({k});
    Program p = b.build();

    // Find the 2000-instruction block and count memory ops.
    for (const auto &bb : p.blocks) {
        if (bb.numInstrs() != 2000)
            continue;
        int mem = 0;
        for (const auto &d : bb.instrs)
            mem += isMemOp(d.op);
        EXPECT_NEAR(mem / 2000.0, 0.5, 0.06);
        return;
    }
    FAIL() << "block not found";
}

TEST(ProgramBuilder, EstimateWorkScalesWithRunList)
{
    ProgramBuilder b1("w", 3);
    uint32_t k = b1.beginKernel("k", SchedPolicy::StaticFor, 100);
    b1.addBlock({.numInstrs = 50, .fracMem = 0.2, .streams = {}});
    b1.endKernel();
    b1.runKernels({k}, 2);
    Program p2 = b1.build();

    ProgramBuilder b2("w", 3);
    k = b2.beginKernel("k", SchedPolicy::StaticFor, 100);
    b2.addBlock({.numInstrs = 50, .fracMem = 0.2, .streams = {}});
    b2.endKernel();
    b2.runKernels({k}, 4);
    Program p4 = b2.build();

    EXPECT_GT(p4.estimateWorkInstrs(8), p2.estimateWorkInstrs(8));
    EXPECT_NEAR(static_cast<double>(p4.estimateWorkInstrs(8)) /
                    static_cast<double>(p2.estimateWorkInstrs(8)),
                2.0, 0.05);
}

TEST(ProgramBuilder, CondLowersFourBlocks)
{
    ProgramBuilder b("cond", 5);
    uint32_t k = b.beginKernel("k", SchedPolicy::StaticFor, 8);
    b.addCond({.numInstrs = 8, .streams = {}}, {.numInstrs = 20, .streams = {}},
              {.numInstrs = 12, .streams = {}}, {.numInstrs = 6, .streams = {}},
              0.5);
    b.endKernel();
    b.runKernels({k});
    Program p = b.build();
    const auto &item = p.kernels[0].body.at(0);
    EXPECT_EQ(item.kind, BodyItem::Kind::Cond);
    EXPECT_TRUE(p.blocks[item.blocks[0]].endsWithBranch());
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(p.inMainImage(item.blocks[i]));
}

TEST(ProgramBuilder, CriticalPatchedToRuntimeStubs)
{
    ProgramBuilder b("crit", 5);
    uint32_t k = b.beginKernel("k", SchedPolicy::StaticFor, 8);
    b.addCritical(0, {.numInstrs = 16, .streams = {}});
    b.endKernel();
    b.runKernels({k});
    Program p = b.build();
    const auto &item = p.kernels[0].body.at(0);
    EXPECT_EQ(item.kind, BodyItem::Kind::Critical);
    EXPECT_EQ(item.blocks[0], p.runtime.lockAcquire);
    EXPECT_EQ(item.blocks[2], p.runtime.lockRelease);
    EXPECT_TRUE(p.inMainImage(item.blocks[1]));
    EXPECT_EQ(p.numLocks, 1u);
}

TEST(ProgramBuilder, FatalOnEmptyRunList)
{
    ProgramBuilder b("bad", 1);
    uint32_t k = b.beginKernel("k", SchedPolicy::StaticFor, 8);
    b.addBlock({.numInstrs = 8, .streams = {}});
    b.endKernel();
    (void)k;
    EXPECT_THROW(b.build(), FatalError);
}

TEST(ProgramBuilder, FatalOnZeroIterations)
{
    ProgramBuilder b("bad2", 1);
    EXPECT_THROW(b.beginKernel("k", SchedPolicy::StaticFor, 0),
                 FatalError);
}

TEST(Program, BodyInstrCountCountsLoopTrips)
{
    Program p = makeTinyProgram();
    const auto &k = p.kernels[0];
    // per-iteration: header(6)+latch(3) + block(32) +
    // loop(4 trips x (header 4 + latch 3 + body 16)) = 133
    EXPECT_EQ(p.bodyInstrCount(k),
              6u + 3u + 32u + 4u * (4u + 3u + 16u));
}

TEST(OpClass, Predicates)
{
    EXPECT_TRUE(isMemOp(OpClass::Load));
    EXPECT_TRUE(isMemOp(OpClass::Store));
    EXPECT_TRUE(isMemOp(OpClass::AtomicRmw));
    EXPECT_FALSE(isMemOp(OpClass::FpMul));
    EXPECT_TRUE(isMemWrite(OpClass::Store));
    EXPECT_FALSE(isMemWrite(OpClass::Load));
    EXPECT_EQ(opClassName(OpClass::FpDiv), "FpDiv");
}

} // namespace
} // namespace looppoint
