/**
 * @file
 * Campaign-supervisor tests: the failure classifier and deterministic
 * backoff schedule, the crash-safe campaign journal (roundtrip, torn
 * tail, fingerprint mismatch, exactly-once replay), stale-result
 * detection, and the supervisor end to end — injected crash, wedge
 * (watchdog escalation), and corrupt-result faults must each cost one
 * attempt, never the campaign, and a restarted supervisor must adopt
 * completed jobs from the journal without relaunching them.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/campaign_journal.hh"
#include "campaign/supervisor.hh"
#include "util/backoff.hh"
#include "util/checksum.hh"
#include "util/fault.hh"
#include "util/rng.hh"

namespace looppoint {
namespace {

std::string
freshDir(const std::string &name)
{
    std::string dir = testing::TempDir() + "lp_campaign_" + name;
    std::string cmd = "rm -rf '" + dir + "'";
    EXPECT_EQ(std::system(cmd.c_str()), 0);
    return dir;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

// ------------------------------------------------- classification

/** Raw wait statuses in the Linux encoding waitpid() hands back. */
int
exitStatus(int code)
{
    return (code & 0xff) << 8;
}

int
signalStatus(int sig)
{
    return sig & 0x7f;
}

TEST(FailureClassify, ExitCodeTable)
{
    EXPECT_EQ(classifyWaitStatus(exitStatus(0)),
              FailureClass::Success);
    EXPECT_EQ(classifyWaitStatus(exitStatus(1)),
              FailureClass::Degraded);
    EXPECT_EQ(classifyWaitStatus(exitStatus(2)),
              FailureClass::Permanent);
    EXPECT_EQ(classifyWaitStatus(exitStatus(3)),
              FailureClass::Transient);
    EXPECT_EQ(classifyWaitStatus(exitStatus(4)),
              FailureClass::Interrupted);
    // Unknown codes: the same command line will fail the same way.
    EXPECT_EQ(classifyWaitStatus(exitStatus(5)),
              FailureClass::Permanent);
    EXPECT_EQ(classifyWaitStatus(exitStatus(127)),
              FailureClass::Permanent);
}

TEST(FailureClassify, AnySignalDeathIsTransient)
{
    for (int sig : {SIGKILL, SIGSEGV, SIGTERM, SIGBUS, SIGABRT})
        EXPECT_EQ(classifyWaitStatus(signalStatus(sig)),
                  FailureClass::Transient)
            << "signal " << sig;
}

TEST(FailureClassify, StableNames)
{
    EXPECT_STREQ(failureClassName(FailureClass::Success), "success");
    EXPECT_STREQ(failureClassName(FailureClass::Degraded), "degraded");
    EXPECT_STREQ(failureClassName(FailureClass::Permanent),
                 "permanent");
    EXPECT_STREQ(failureClassName(FailureClass::Transient),
                 "transient");
    EXPECT_STREQ(failureClassName(FailureClass::Interrupted),
                 "interrupted");
}

// ------------------------------------------------------- backoff

TEST(Backoff, DeterministicForFixedSeed)
{
    BackoffPolicy a;
    a.seed = 1234;
    BackoffPolicy b = a;
    for (uint32_t retry = 0; retry < 8; ++retry)
        EXPECT_EQ(a.delaySeconds(retry), b.delaySeconds(retry))
            << "retry " << retry;
}

TEST(Backoff, SeedSelectsTheJitterStream)
{
    BackoffPolicy a;
    a.seed = 1;
    BackoffPolicy b = a.withSeed(2);
    // Same envelope, different jitter: at least one early retry must
    // differ (all-equal would mean the seed is ignored).
    bool differ = false;
    for (uint32_t retry = 0; retry < 4 && !differ; ++retry)
        differ = a.delaySeconds(retry) != b.delaySeconds(retry);
    EXPECT_TRUE(differ);
}

TEST(Backoff, JitterStaysInsideTheBand)
{
    BackoffPolicy p;
    p.baseSeconds = 1.0;
    p.multiplier = 2.0;
    p.capSeconds = 1e9;
    p.jitterFraction = 0.5;
    for (uint64_t seed = 0; seed < 50; ++seed) {
        p.seed = seed;
        for (uint32_t retry = 0; retry < 6; ++retry) {
            const double envelope = std::ldexp(1.0, retry); // 2^retry
            const double d = p.delaySeconds(retry);
            EXPECT_GE(d, envelope * 0.75);
            EXPECT_LE(d, envelope * 1.25);
        }
    }
}

TEST(Backoff, CapSaturatesExactly)
{
    BackoffPolicy p;
    p.baseSeconds = 1.0;
    p.multiplier = 2.0;
    p.capSeconds = 10.0;
    p.jitterFraction = 0.5;
    p.seed = 99;
    // 1, 2, 4, 8 are under the cap; 16 and beyond saturate and the
    // cap comes back exactly (no jitter band around it).
    EXPECT_LT(p.delaySeconds(3), 10.0);
    for (uint32_t retry = 4; retry < 40; ++retry)
        EXPECT_EQ(p.delaySeconds(retry), 10.0) << "retry " << retry;
}

TEST(Backoff, ZeroJitterIsPureExponential)
{
    BackoffPolicy p;
    p.baseSeconds = 0.5;
    p.multiplier = 2.0;
    p.capSeconds = 1e9;
    p.jitterFraction = 0.0;
    EXPECT_EQ(p.delaySeconds(0), 0.5);
    EXPECT_EQ(p.delaySeconds(1), 1.0);
    EXPECT_EQ(p.delaySeconds(2), 2.0);
    EXPECT_EQ(p.delaySeconds(3), 4.0);
}

// ------------------------------------------------ fault plan (job:)

TEST(JobFaults, ParseAndMatch)
{
    FaultPlan plan = FaultPlan::parse(
        "job:index=2,kind=crash,times=1;job:index=3,kind=wedge;"
        "job:index=5,kind=corrupt-result");
    EXPECT_EQ(plan.jobFault(2, 0), FaultSpec::Kind::Crash);
    EXPECT_EQ(plan.jobFault(2, 1), std::nullopt); // times=1: retry ok
    EXPECT_EQ(plan.jobFault(3, 0), FaultSpec::Kind::Wedge);
    EXPECT_EQ(plan.jobFault(3, 7), FaultSpec::Kind::Wedge); // all
    EXPECT_EQ(plan.jobFault(5, 0), FaultSpec::Kind::CorruptResult);
    EXPECT_EQ(plan.jobFault(0, 0), std::nullopt);
}

// -------------------------------------------------------- journal

CampaignEvent
ev(uint32_t index, const std::string &event, uint32_t attempt,
   int32_t code = -1, int32_t sig = 0)
{
    return {index, "job-" + std::to_string(index), event, attempt,
            code, sig};
}

TEST(CampaignJournal, RoundtripAndReplay)
{
    const std::string dir = freshDir("journal_roundtrip");
    mkdir(dir.c_str(), 0777);
    const std::string path = dir + "/campaign.journal";
    {
        CampaignJournal jnl(path, "fp1234");
        ASSERT_FALSE(jnl.load(false)); // fresh
        jnl.append(ev(0, "launch", 0));
        jnl.append(ev(0, "ok", 0, 0));
        jnl.append(ev(1, "launch", 0));
        jnl.append(ev(1, "fail-transient", 0, 3));
        jnl.append(ev(1, "launch", 1));
        jnl.append(ev(1, "degraded", 1, 1));
        jnl.append(ev(2, "launch", 0));
        // job 2: launched, never completed (mid-flight at the kill).
    }
    CampaignJournal jnl(path, "fp1234");
    ASSERT_FALSE(jnl.load(true));
    EXPECT_EQ(jnl.events().size(), 7u);
    EXPECT_EQ(jnl.droppedRecords(), 0u);

    auto ledgers = jnl.ledgers();
    ASSERT_EQ(ledgers.size(), 3u);
    EXPECT_TRUE(ledgers[0].completed);
    EXPECT_EQ(ledgers[0].finalStatus, "ok");
    EXPECT_EQ(ledgers[0].attempts, 1u);
    EXPECT_TRUE(ledgers[1].completed);
    EXPECT_EQ(ledgers[1].finalStatus, "degraded");
    EXPECT_EQ(ledgers[1].attempts, 2u);
    EXPECT_FALSE(ledgers[2].completed); // must rerun
    EXPECT_EQ(ledgers[2].attempts, 1u);
}

TEST(CampaignJournal, StaleEventInvalidatesACompletion)
{
    const std::string dir = freshDir("journal_stale");
    mkdir(dir.c_str(), 0777);
    CampaignJournal jnl(dir + "/campaign.journal", "fp");
    ASSERT_FALSE(jnl.load(false));
    jnl.append(ev(0, "launch", 0));
    jnl.append(ev(0, "ok", 0, 0));
    jnl.append(ev(0, "stale", 0));
    auto ledgers = jnl.ledgers();
    EXPECT_FALSE(ledgers[0].completed);
}

TEST(CampaignJournal, TornTailIsDroppedNotFatal)
{
    const std::string dir = freshDir("journal_torn");
    mkdir(dir.c_str(), 0777);
    const std::string path = dir + "/campaign.journal";
    {
        CampaignJournal jnl(path, "fp");
        ASSERT_FALSE(jnl.load(false));
        jnl.append(ev(0, "launch", 0));
        jnl.append(ev(0, "ok", 0, 0));
        jnl.append(ev(1, "launch", 0));
    }
    // Simulate a supervisor killed mid-write: a valid prefix, then a
    // record whose CRC does not match, then pure garbage.
    {
        std::ofstream os(path, std::ios::app);
        os << withCrcLine(encodeCampaignEvent(ev(1, "ok", 0, 0)))
           << "corrupted-mid-line\n";
        os << "job idx=2 id=x event=launch"; // no CRC at all
    }
    CampaignJournal jnl(path, "fp");
    ASSERT_FALSE(jnl.load(true)); // torn tail is tolerated
    EXPECT_EQ(jnl.events().size(), 3u);
    EXPECT_EQ(jnl.droppedRecords(), 2u);
    auto ledgers = jnl.ledgers();
    EXPECT_TRUE(ledgers[0].completed);
    EXPECT_FALSE(ledgers[1].completed); // the torn "ok" never counted
}

TEST(CampaignJournal, FingerprintMismatchRefusesTheJournal)
{
    const std::string dir = freshDir("journal_fp");
    mkdir(dir.c_str(), 0777);
    const std::string path = dir + "/campaign.journal";
    {
        CampaignJournal jnl(path, "fp-old");
        ASSERT_FALSE(jnl.load(false));
        jnl.append(ev(0, "launch", 0));
    }
    CampaignJournal jnl(path, "fp-new");
    auto err = jnl.load(true);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->kind, LoadErrorKind::Validation);
}

TEST(CampaignJournal, EventEncodingRoundtripsExactly)
{
    CampaignEvent e{7, "a-b-t4-c", "fail-transient", 3, -1, 9};
    auto parsed = parseCampaignEvent(encodeCampaignEvent(e));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, e);
    EXPECT_FALSE(parseCampaignEvent("job idx=x id=y event=z"));
    EXPECT_FALSE(
        parseCampaignEvent("job idx=1 id=a event=ok attempt=0 "
                           "code=0 sig=0 trailing"));
}

// -------------------------------------------- campaign model bits

TEST(CampaignModel, FingerprintCoversTheMatrixNotHostKnobs)
{
    CampaignSpec a;
    a.outDir = "/tmp/x";
    CampaignSpec b = a;
    EXPECT_EQ(campaignFingerprint(a), campaignFingerprint(b));
    b.jobs = 8; // host knob: journal stays adoptable
    EXPECT_EQ(campaignFingerprint(a), campaignFingerprint(b));
    b = a;
    b.seed = 43; // result-affecting: different campaign
    EXPECT_NE(campaignFingerprint(a), campaignFingerprint(b));
    b = a;
    b.uarchs.push_back("bigcore");
    EXPECT_NE(campaignFingerprint(a), campaignFingerprint(b));
}

TEST(CampaignModel, MatrixIndicesAreStablePositions)
{
    CampaignSpec spec;
    spec.apps = {"a1", "a2"};
    spec.inputs = {"test"};
    spec.threads = {2, 4};
    spec.uarchs = {"u1", "u2"};
    auto jobs = expandCampaignMatrix(spec);
    ASSERT_EQ(jobs.size(), 8u);
    for (size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(jobs[i].index, i);
    EXPECT_EQ(jobs[0].id, "a1-test-t2-u1");
    EXPECT_EQ(jobs[1].id, "a1-test-t2-u2"); // uarch innermost
    EXPECT_EQ(jobs[4].id, "a2-test-t2-u1");
}

TEST(CampaignModel, ValidJobResultRejectsGarbageAndTruncation)
{
    const std::string dir = freshDir("valid_result");
    mkdir(dir.c_str(), 0777);
    EXPECT_FALSE(validJobResult(dir)); // missing
    auto put = [&](const std::string &text) {
        std::ofstream os(dir + "/result.json");
        os << text;
    };
    put("{\"kind\": \"lp_campaign_job\", \"trunc");
    EXPECT_FALSE(validJobResult(dir)); // unparseable
    put("{\"kind\": \"something_else\", \"coverage\": 1, "
        "\"wallSeconds\": 1}");
    EXPECT_FALSE(validJobResult(dir)); // wrong kind
    put("{\"kind\": \"lp_campaign_job\", \"coverage\": 1}");
    EXPECT_FALSE(validJobResult(dir)); // incomplete
    put("{\"kind\": \"lp_campaign_job\", \"coverage\": 1, "
        "\"wallSeconds\": 0.5}");
    EXPECT_TRUE(validJobResult(dir));
}

// -------------------------------------------- supervisor end to end

CampaignSpec
tinySpec(const std::string &out_dir)
{
    CampaignSpec spec;
    spec.apps = {"demo-matrix-1"};
    spec.inputs = {"test"};
    spec.threads = {4};
    spec.uarchs = {"baseline"};
    spec.outDir = out_dir;
    spec.storeDir = out_dir + "/store";
    spec.fullSim = false; // keep the child cheap
    return spec;
}

SupervisorOptions
fastOptions()
{
    SupervisorOptions opts;
    opts.backoff.baseSeconds = 0.01;
    opts.backoff.capSeconds = 0.05;
    return opts;
}

/** One event per (index, event) pair, for exactly-once assertions. */
size_t
countEvents(const CampaignJournal &jnl, uint32_t index,
            const std::string &event)
{
    size_t n = 0;
    for (const auto &e : jnl.events())
        n += e.index == index && e.event == event;
    return n;
}

TEST(Supervisor, CleanRunCompletesAndJournals)
{
    const std::string dir = freshDir("sup_clean");
    CampaignSpec spec = tinySpec(dir);
    CampaignSupervisor sup(spec, fastOptions());
    SupervisorResult res = sup.run();
    EXPECT_EQ(res.exitCode, 0);
    ASSERT_EQ(res.jobs.size(), 1u);
    EXPECT_EQ(res.jobs[0].status, "ok");
    EXPECT_EQ(res.launches, 1u);
    EXPECT_EQ(res.retries, 0u);
    EXPECT_TRUE(validJobResult(dir + "/" + res.jobs[0].id));

    CampaignJournal jnl(dir + "/campaign.journal",
                        campaignFingerprint(spec));
    ASSERT_FALSE(jnl.load(true));
    EXPECT_EQ(countEvents(jnl, 0, "launch"), 1u);
    EXPECT_EQ(countEvents(jnl, 0, "ok"), 1u);

    // status.json reached its terminal state.
    const std::string status = slurp(dir + "/status.json");
    EXPECT_NE(status.find("\"state\": \"done\""), std::string::npos);
}

TEST(Supervisor, RestartAdoptsCompletedJobsExactlyOnce)
{
    const std::string dir = freshDir("sup_adopt");
    CampaignSpec spec = tinySpec(dir);
    {
        CampaignSupervisor sup(spec, fastOptions());
        EXPECT_EQ(sup.run().exitCode, 0);
    }
    const std::string result_before =
        slurp(dir + "/" + tinySpec(dir).apps[0] + "-test-t4-baseline" +
              "/result.json");

    CampaignSupervisor sup(spec, fastOptions());
    SupervisorResult res = sup.run();
    EXPECT_EQ(res.exitCode, 0);
    EXPECT_EQ(res.launches, 0u); // adopted, not relaunched
    EXPECT_EQ(res.adopted, 1u);
    EXPECT_EQ(res.jobs[0].status, "ok");

    // Exactly-once at the journal level: still one launch, one ok.
    CampaignJournal jnl(dir + "/campaign.journal",
                        campaignFingerprint(spec));
    ASSERT_FALSE(jnl.load(true));
    EXPECT_EQ(countEvents(jnl, 0, "launch"), 1u);
    EXPECT_EQ(countEvents(jnl, 0, "ok"), 1u);

    // And the adopted result is untouched, byte for byte.
    const std::string result_after =
        slurp(dir + "/" + res.jobs[0].id + "/result.json");
    EXPECT_EQ(result_before, result_after);
}

TEST(Supervisor, CrashFaultCostsOneAttemptNotTheCampaign)
{
    const std::string dir = freshDir("sup_crash");
    CampaignSpec spec = tinySpec(dir);
    SupervisorOptions opts = fastOptions();
    opts.faults = FaultPlan::parse("job:index=0,kind=crash,times=1");
    CampaignSupervisor sup(spec, opts);
    SupervisorResult res = sup.run();
    EXPECT_EQ(res.exitCode, 0);
    EXPECT_EQ(res.jobs[0].status, "ok");
    EXPECT_EQ(res.launches, 2u); // crash + successful retry
    EXPECT_EQ(res.retries, 1u);

    CampaignJournal jnl(dir + "/campaign.journal",
                        campaignFingerprint(spec));
    ASSERT_FALSE(jnl.load(true));
    EXPECT_EQ(countEvents(jnl, 0, "fail-transient"), 1u);
    EXPECT_EQ(countEvents(jnl, 0, "ok"), 1u);
}

TEST(Supervisor, WedgeFaultIsClearedByWatchdogEscalation)
{
    const std::string dir = freshDir("sup_wedge");
    CampaignSpec spec = tinySpec(dir);
    SupervisorOptions opts = fastOptions();
    opts.faults = FaultPlan::parse("job:index=0,kind=wedge,times=1");
    // The wedged child ignores SIGTERM, so the grace period must
    // elapse and SIGKILL must clear it.
    opts.jobTimeoutSeconds = 0.3;
    opts.killGraceSeconds = 0.2;
    CampaignSupervisor sup(spec, opts);
    SupervisorResult res = sup.run();
    EXPECT_EQ(res.exitCode, 0);
    EXPECT_EQ(res.jobs[0].status, "ok");
    EXPECT_EQ(res.timeouts, 1u);
    EXPECT_EQ(res.retries, 1u);

    CampaignJournal jnl(dir + "/campaign.journal",
                        campaignFingerprint(spec));
    ASSERT_FALSE(jnl.load(true));
    EXPECT_EQ(countEvents(jnl, 0, "timeout"), 1u);
    EXPECT_EQ(countEvents(jnl, 0, "ok"), 1u);
}

TEST(Supervisor, CorruptResultFaultIsDetectedAndRetried)
{
    const std::string dir = freshDir("sup_corrupt");
    CampaignSpec spec = tinySpec(dir);
    SupervisorOptions opts = fastOptions();
    opts.faults =
        FaultPlan::parse("job:index=0,kind=corrupt-result,times=1");
    CampaignSupervisor sup(spec, opts);
    SupervisorResult res = sup.run();
    // The faulty child exits 0 with a .done marker and garbage
    // result.json; trusting it would silently hole the campaign.
    EXPECT_EQ(res.exitCode, 0);
    EXPECT_EQ(res.jobs[0].status, "ok");
    EXPECT_EQ(res.staleResults, 1u);
    EXPECT_EQ(res.retries, 1u);
    EXPECT_TRUE(validJobResult(dir + "/" + res.jobs[0].id));

    CampaignJournal jnl(dir + "/campaign.journal",
                        campaignFingerprint(spec));
    ASSERT_FALSE(jnl.load(true));
    EXPECT_EQ(countEvents(jnl, 0, "stale"), 1u);
    EXPECT_EQ(countEvents(jnl, 0, "ok"), 1u);
}

TEST(Supervisor, StaleDoneMarkerWithoutResultIsRerun)
{
    const std::string dir = freshDir("sup_stale_done");
    CampaignSpec spec = tinySpec(dir);
    // Fabricate the stale state an old crash could leave: a .done
    // marker with no (or garbage) result.json beside it.
    auto jobs = expandCampaignMatrix(spec);
    ASSERT_EQ(jobs.size(), 1u);
    const std::string job_dir = dir + "/" + jobs[0].id;
    makeCampaignDir(dir);
    makeCampaignDir(job_dir);
    {
        std::ofstream done(job_dir + "/.done");
        done << "ok\n";
    }
    CampaignSupervisor sup(spec, fastOptions());
    SupervisorResult res = sup.run();
    EXPECT_EQ(res.exitCode, 0);
    EXPECT_EQ(res.jobs[0].status, "ok");
    EXPECT_EQ(res.staleResults, 1u);
    EXPECT_EQ(res.launches, 1u); // it actually ran
    EXPECT_TRUE(validJobResult(job_dir));
}

TEST(Supervisor, DiskWatermarkRunsGcWithoutEvictingLiveObjects)
{
    const std::string dir = freshDir("sup_gc");
    CampaignSpec spec = tinySpec(dir);
    {
        // Warm run populates the store.
        CampaignSupervisor sup(spec, fastOptions());
        ASSERT_EQ(sup.run().exitCode, 0);
    }
    // Second run with a probe reporting pressure below the watermark
    // (but above the floor): GC must fire, and with the default
    // target it must not evict anything a manifest still binds.
    const std::string rerun_dir = freshDir("sup_gc_rerun");
    CampaignSpec spec2 = tinySpec(rerun_dir);
    spec2.storeDir = spec.storeDir; // same store
    SupervisorOptions opts = fastOptions();
    opts.gcWatermarkBytes = 1ull << 40;
    opts.gcFloorBytes = 1; // never park
    opts.freeDiskProbe = [](const std::string &) {
        return uint64_t{1} << 30;
    };
    CampaignSupervisor sup(spec2, opts);
    SupervisorResult res = sup.run();
    EXPECT_EQ(res.exitCode, 0);
    EXPECT_GE(res.gcRuns, 1u);
    // The live objects survived: the rerun's job was served from the
    // store (store hits recorded in its result.json).
    const std::string result =
        slurp(rerun_dir + "/" + res.jobs[0].id + "/result.json");
    EXPECT_NE(result.find("\"record\": true"), std::string::npos)
        << result;
}

TEST(Supervisor, DiskFloorParksTheQueue)
{
    const std::string dir = freshDir("sup_park");
    CampaignSpec spec = tinySpec(dir);
    SupervisorOptions opts = fastOptions();
    opts.gcWatermarkBytes = 100;
    opts.gcFloorBytes = 50;
    opts.freeDiskProbe = [](const std::string &) {
        return uint64_t{10}; // hopeless, even after GC
    };
    CampaignSupervisor sup(spec, opts);
    SupervisorResult res = sup.run();
    EXPECT_EQ(res.exitCode, 1);
    EXPECT_TRUE(res.parked);
    EXPECT_EQ(res.launches, 0u); // parked instead of launching
    EXPECT_EQ(res.jobs[0].status, "parked");
}

} // namespace
} // namespace looppoint
