/**
 * @file
 * Tests for the shared work-stealing thread pool: parallelFor under
 * uneven task costs, exception propagation (futures and parallelFor
 * bodies), nested submission from inside tasks, and destructor
 * behaviour with work still queued.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hh"

namespace looppoint {
namespace {

TEST(ThreadPool, DefaultWorkersAtLeastOne)
{
    EXPECT_GE(ThreadPool::defaultWorkers(), 1u);
    ThreadPool pool;
    EXPECT_EQ(pool.numWorkers(), ThreadPool::defaultWorkers());
    ThreadPool three(3);
    EXPECT_EQ(three.numWorkers(), 3u);
}

TEST(ThreadPool, SubmitReturnsValue)
{
    ThreadPool pool(2);
    auto fut = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ParallelForUnevenCosts)
{
    // Uneven per-index cost exercises stealing: a static partition
    // would leave one worker with nearly all the work.
    constexpr size_t n = 257;
    ThreadPool pool(4);
    std::vector<uint64_t> out(n, 0);
    pool.parallelFor(0, n, [&](size_t i) {
        uint64_t acc = 0;
        const uint64_t spins = (i % 7 == 0) ? 200'000 : 50;
        for (uint64_t j = 0; j < spins; ++j)
            acc += j * j + i;
        out[i] = acc;
    });
    for (size_t i = 0; i < n; ++i) {
        uint64_t acc = 0;
        const uint64_t spins = (i % 7 == 0) ? 200'000 : 50;
        for (uint64_t j = 0; j < spins; ++j)
            acc += j * j + i;
        EXPECT_EQ(out[i], acc) << "index " << i;
    }
}

TEST(ThreadPool, ParallelForEveryIndexExactlyOnce)
{
    constexpr size_t n = 1000;
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(0, n, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForEmptyAndSingle)
{
    ThreadPool pool(2);
    int calls = 0;
    pool.parallelFor(5, 5, [&](size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(5, 6, [&](size_t i) {
        EXPECT_EQ(i, 5u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, FutureExceptionPropagates)
{
    ThreadPool pool(2);
    auto fut = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForExceptionPropagates)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallelFor(0, 100,
                                  [&](size_t i) {
                                      ran.fetch_add(1);
                                      if (i == 37)
                                          throw std::runtime_error(
                                              "index 37");
                                  }),
                 std::runtime_error);
    // Every claimed index finished before the rethrow; the pool stays
    // usable afterwards.
    int sum = 0;
    pool.parallelFor(0, 10, [&](size_t) { sum += 0; });
    auto fut = pool.submit([] { return 1; });
    EXPECT_EQ(fut.get(), 1);
    EXPECT_GE(ran.load(), 1);
}

TEST(ThreadPool, NestedSubmitWithWaitHelping)
{
    // A task that submits subtasks and waits for them must not
    // deadlock, even on a one-worker pool: waitHelping runs queued
    // tasks while waiting.
    for (uint32_t workers : {1u, 4u}) {
        ThreadPool pool(workers);
        auto outer = pool.submit([&pool] {
            std::vector<std::future<int>> subs;
            for (int i = 0; i < 8; ++i)
                subs.push_back(pool.submit([i] { return i * i; }));
            int sum = 0;
            for (auto &f : subs)
                sum += pool.waitHelping(f);
            return sum;
        });
        EXPECT_EQ(pool.waitHelping(outer), 140) << workers
                                                << " workers";
    }
}

TEST(ThreadPool, NestedParallelFor)
{
    // parallelFor from inside a pool task: the inner caller claims its
    // own indices, so this cannot deadlock regardless of pool width.
    ThreadPool pool(2);
    std::vector<std::vector<int>> grid(8, std::vector<int>(8, 0));
    pool.parallelFor(0, 8, [&](size_t r) {
        pool.parallelFor(0, 8, [&, r](size_t c) {
            grid[r][c] = static_cast<int>(r * 8 + c);
        });
    });
    for (size_t r = 0; r < 8; ++r)
        for (size_t c = 0; c < 8; ++c)
            EXPECT_EQ(grid[r][c], static_cast<int>(r * 8 + c));
}

TEST(ThreadPool, DestructorDrainsQueuedWork)
{
    // Submitted work must complete even when the pool is destroyed
    // immediately: futures obtained before destruction are all ready
    // afterwards.
    std::atomic<int> done{0};
    std::vector<std::future<void>> futs;
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            futs.push_back(pool.submit([&done] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
                done.fetch_add(1);
            }));
    }
    for (auto &f : futs)
        f.get(); // throws if a task was dropped
    EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, ForEachSerialFallback)
{
    // The static helper runs inline when no pool is given — the shape
    // used by callers that keep a serial path (jobs=1).
    std::vector<size_t> order;
    ThreadPool::forEach(nullptr, 3, 8,
                        [&](size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<size_t>{3, 4, 5, 6, 7}));

    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(16);
    ThreadPool::forEach(&pool, 0, 16,
                        [&](size_t i) { hits[i].fetch_add(1); });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ManySmallTasksFromManyThreads)
{
    // External submitters racing with workers; total must be exact.
    ThreadPool pool(4);
    std::atomic<uint64_t> sum{0};
    std::vector<std::thread> submitters;
    std::vector<std::future<void>> futs;
    std::mutex futs_mtx;
    for (int t = 0; t < 4; ++t)
        submitters.emplace_back([&, t] {
            for (int i = 0; i < 100; ++i) {
                auto f = pool.submit(
                    [&sum, t, i] { sum.fetch_add(t * 100 + i); });
                std::lock_guard<std::mutex> lk(futs_mtx);
                futs.push_back(std::move(f));
            }
        });
    for (auto &s : submitters)
        s.join();
    for (auto &f : futs)
        pool.waitHelping(f);
    uint64_t expect = 0;
    for (int t = 0; t < 4; ++t)
        for (int i = 0; i < 100; ++i)
            expect += t * 100 + i;
    EXPECT_EQ(sum.load(), expect);
}

} // namespace
} // namespace looppoint
