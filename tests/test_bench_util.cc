/**
 * @file
 * Tests for the bench harness helpers (flag parsing).
 */

#include <gtest/gtest.h>

#include "bench_util.hh"

namespace looppoint::bench {
namespace {

Args
makeArgs(std::initializer_list<const char *> list)
{
    std::vector<char *> argv;
    argv.push_back(const_cast<char *>("prog"));
    for (const char *a : list)
        argv.push_back(const_cast<char *>(a));
    return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchArgs, HasDetectsBareAndValuedFlags)
{
    Args args = makeArgs({"--quick", "--app=619.lbm_s.1"});
    EXPECT_TRUE(args.has("quick"));
    EXPECT_TRUE(args.has("app"));
    EXPECT_FALSE(args.has("full"));
    EXPECT_FALSE(args.has("qui")); // no prefix matching
}

TEST(BenchArgs, GetReturnsValueOrDefault)
{
    Args args = makeArgs({"--app=npb-cg", "--scale=250"});
    EXPECT_EQ(args.get("app"), "npb-cg");
    EXPECT_EQ(args.get("missing"), "");
    EXPECT_EQ(args.get("missing", "dflt"), "dflt");
    EXPECT_EQ(args.getU64("scale", 1000), 250u);
    EXPECT_EQ(args.getU64("other", 1000), 1000u);
}

TEST(BenchArgs, BareFlagHasNoValue)
{
    Args args = makeArgs({"--quick"});
    EXPECT_EQ(args.get("quick"), "");
    EXPECT_EQ(args.getU64("quick", 7), 7u);
}

} // namespace
} // namespace looppoint::bench
