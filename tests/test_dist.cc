/**
 * @file
 * Multi-process region farm tests. Three layers, bottom up: the wire
 * framing (round-trips, torn/truncated/bit-flipped frames must come
 * back as structured LoadErrors, incremental extraction from a byte
 * stream), the message codec (round-trips with awkward doubles,
 * tamper rejection via the re-encode equality check), and the
 * backend-equivalence properties the tentpole promises: the procs
 * backend is bit-identical to the in-process pool for any worker
 * count, and a SIGKILL'd or wedged worker is respawned and retried
 * without losing coverage or perturbing a single metric bit.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/looppoint.hh"
#include "dist/frame.hh"
#include "dist/protocol.hh"
#include "sim/config.hh"
#include "util/fault.hh"
#include "util/thread_pool.hh"
#include "workload/descriptor.hh"

namespace looppoint {
namespace {

// ------------------------------------------------------------ framing

TEST(DistFrame, RoundTripsPayloads)
{
    for (const std::string &payload :
         {std::string(""), std::string("task region=1"),
          std::string("binary \0 and \n newline", 22),
          std::string(4096, 'x')}) {
        const std::string frame = encodeDistFrame(payload);
        auto res = decodeDistFrame(frame);
        ASSERT_TRUE(res.ok()) << res.error().describe();
        EXPECT_EQ(res.value(), payload);
    }
}

TEST(DistFrame, EveryTruncationPrefixFailsStructurally)
{
    const std::string frame = encodeDistFrame("progress region=3");
    for (size_t n = 0; n < frame.size(); ++n) {
        auto res = decodeDistFrame(frame.substr(0, n));
        ASSERT_FALSE(res.ok()) << "prefix of " << n << " bytes decoded";
        EXPECT_EQ(res.error().kind, LoadErrorKind::Truncated)
            << "prefix " << n << ": " << res.error().describe();
    }
}

TEST(DistFrame, EveryBitFlipFailsStructurally)
{
    const std::string payload = "result region=7 ok=0";
    const std::string frame = encodeDistFrame(payload);
    for (size_t i = 0; i < frame.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string bad = frame;
            bad[i] = static_cast<char>(bad[i] ^ (1 << bit));
            auto res = decodeDistFrame(bad);
            // Flips in the outer length prefix may announce more or
            // fewer bytes (Truncated/Validation); flips in the
            // payload trip the checksum; flips in the envelope trip
            // the magic/version/length checks — except a few
            // whitespace bytes the line parser is lenient about,
            // which are harmless as long as the payload survives
            // untouched. No flip may ever yield a *different*
            // payload.
            if (res.ok()) {
                EXPECT_EQ(res.value(), payload)
                    << "byte " << i << " bit " << bit
                    << " silently corrupted the payload";
            }
        }
    }
}

TEST(DistFrame, OversizeLengthPrefixRejectedUpFront)
{
    // 4-byte LE prefix announcing kMaxDistFrameBytes + 1.
    const uint32_t huge = kMaxDistFrameBytes + 1;
    std::string frame;
    for (int i = 0; i < 4; ++i)
        frame.push_back(static_cast<char>((huge >> (8 * i)) & 0xFF));
    auto res = decodeDistFrame(frame);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().kind, LoadErrorKind::Validation);

    // The incremental reader must fail immediately too — it cannot
    // wait for 64 MiB that will never arrive.
    std::string buf = frame;
    auto inc = tryExtractFrame(buf);
    ASSERT_TRUE(inc.has_value());
    EXPECT_FALSE(inc->ok());
}

TEST(DistFrame, TrailingBytesRejected)
{
    auto res = decodeDistFrame(encodeDistFrame("task") + "x");
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().kind, LoadErrorKind::Validation);
}

TEST(DistFrame, IncrementalExtractionByteAtATime)
{
    const std::string payload = "progress region=1 attempt=2";
    const std::string frame = encodeDistFrame(payload);
    std::string buf;
    for (size_t i = 0; i + 1 < frame.size(); ++i) {
        buf.push_back(frame[i]);
        EXPECT_FALSE(tryExtractFrame(buf).has_value())
            << "extracted after " << (i + 1) << " of " << frame.size()
            << " bytes";
    }
    buf.push_back(frame.back());
    auto res = tryExtractFrame(buf);
    ASSERT_TRUE(res.has_value());
    ASSERT_TRUE(res->ok()) << res->error().describe();
    EXPECT_EQ(res->value(), payload);
    EXPECT_TRUE(buf.empty());
}

TEST(DistFrame, ExtractsBackToBackFrames)
{
    const std::string third = encodeDistFrame("third");
    const std::string tail = third.substr(0, third.size() - 1);
    std::string buf =
        encodeDistFrame("first") + encodeDistFrame("second") + tail;
    auto one = tryExtractFrame(buf);
    ASSERT_TRUE(one.has_value() && one->ok());
    EXPECT_EQ(one->value(), "first");
    auto two = tryExtractFrame(buf);
    ASSERT_TRUE(two.has_value() && two->ok());
    EXPECT_EQ(two->value(), "second");
    // The third frame is one byte short: stay put until it arrives.
    EXPECT_FALSE(tryExtractFrame(buf).has_value());
    EXPECT_EQ(buf, tail);
}

// ------------------------------------------------------- message codec

RegionWorkItem
makeItem()
{
    RegionWorkItem item;
    item.index = 3;
    item.start = Marker{0x402010, 17};
    item.end = Marker{0x402040, 29};
    // Deliberately awkward double: %.17g must round-trip it exactly
    // or the re-encode equality check rejects the parse.
    item.multiplier = 3.0000000000000004;
    item.filteredIcount = 123'456'789;
    item.endBlock = 42;
    item.budget = 10'000'000;
    item.maxAttempts = 3;
    item.constrained = true;
    return item;
}

TEST(DistProtocol, TaskRoundTrip)
{
    DistTaskMsg msg{makeItem(), /*attemptBase=*/2};
    const std::string payload = encodeTaskMsg(msg);
    EXPECT_EQ(distMsgTag(payload), "task");
    auto res = parseTaskMsg(payload);
    ASSERT_TRUE(res.ok()) << res.error().describe();
    EXPECT_EQ(res.value(), msg);
}

TEST(DistProtocol, ProgressRoundTrip)
{
    DistProgressMsg msg{7, 1};
    auto res = parseProgressMsg(encodeProgressMsg(msg));
    ASSERT_TRUE(res.ok()) << res.error().describe();
    EXPECT_EQ(res.value(), msg);
}

TEST(DistProtocol, ResultOkRoundTripCarriesJournalRecord)
{
    DistResultMsg msg;
    msg.region = 3;
    msg.ok = true;
    msg.wallSeconds = 1.0 / 3.0;
    msg.attempts = 2; // parse mirrors the record's attempt count
    msg.record.regionIndex = 3;
    msg.record.start = Marker{0x402010, 17};
    msg.record.end = Marker{0x402040, 29};
    msg.record.multiplier = 3.0000000000000004;
    msg.record.attempts = 2;
    msg.record.metrics.cycles = 1000;
    msg.record.metrics.instructions = 2000;
    msg.record.metrics.filteredInstructions = 1500;
    msg.record.metrics.runtimeSeconds = 2.0 / 3.0;
    msg.record.metrics.branches = 100;
    msg.record.metrics.branchMispredicts = 10;
    msg.record.metrics.l1dAccesses = 500;
    msg.record.metrics.l1dMisses = 50;
    msg.record.metrics.l2Accesses = 40;
    msg.record.metrics.l2Misses = 20;
    msg.record.metrics.l3Accesses = 15;
    msg.record.metrics.l3Misses = 5;
    const std::string payload = encodeResultMsg(msg);
    EXPECT_EQ(distMsgTag(payload), "result");
    auto res = parseResultMsg(payload);
    ASSERT_TRUE(res.ok()) << res.error().describe();
    EXPECT_EQ(res.value(), msg);
}

TEST(DistProtocol, ResultErrorRoundTrip)
{
    DistResultMsg msg;
    msg.region = 5;
    msg.ok = false;
    msg.wallSeconds = 0.25;
    msg.attempts = 3;
    msg.error = "end marker not reached (divergent region)";
    auto res = parseResultMsg(encodeResultMsg(msg));
    ASSERT_TRUE(res.ok()) << res.error().describe();
    EXPECT_EQ(res.value(), msg);
}

TEST(DistProtocol, TamperedFieldsRejected)
{
    const std::string task = encodeTaskMsg({makeItem(), 0});
    // Trailing junk after the last parsed field.
    EXPECT_FALSE(parseTaskMsg(task + " extra=1").ok());
    // A numeric field nudged without keeping the re-encoding stable.
    std::string bumped = task;
    const size_t pos = bumped.find("region=3");
    ASSERT_NE(pos, std::string::npos);
    bumped.replace(pos, 8, "region=03");
    EXPECT_FALSE(parseTaskMsg(bumped).ok());
    // Wrong tag entirely.
    EXPECT_FALSE(parseTaskMsg("progress region=1 attempt=0").ok());
    EXPECT_FALSE(parseProgressMsg("task region=1").ok());
    EXPECT_FALSE(parseResultMsg("result region=1 ok=2 wall=0").ok());
}

TEST(DistProtocol, ResultRecordIdentityMismatchRejected)
{
    DistResultMsg msg;
    msg.region = 3;
    msg.ok = true;
    msg.wallSeconds = 0.5;
    msg.record.regionIndex = 3;
    msg.record.multiplier = 1.0;
    msg.record.attempts = 1;
    std::string payload = encodeResultMsg(msg);
    // Flip the embedded record's region index: the envelope says
    // region 3 but the record claims region 4.
    const size_t pos = payload.find("idx=3");
    ASSERT_NE(pos, std::string::npos);
    payload.replace(pos, 5, "idx=4");
    EXPECT_FALSE(parseResultMsg(payload).ok());
}

// ------------------------------------------- worker auto-detect helper

TEST(DistWorkers, ResolveWorkersAutoDetects)
{
    EXPECT_EQ(ThreadPool::resolveWorkers(0),
              ThreadPool::defaultWorkers());
    EXPECT_GE(ThreadPool::resolveWorkers(0), 1u);
    EXPECT_EQ(ThreadPool::resolveWorkers(1), 1u);
    EXPECT_EQ(ThreadPool::resolveWorkers(5), 5u);
}

// -------------------------------------------- backend equivalence

/** One analyzed app shared by the backend tests (the analysis pass is
 * the expensive part and is read-only from here). */
struct Analyzed
{
    Program prog;
    LoopPointOptions opts;
    std::unique_ptr<LoopPointPipeline> pipe;
    LoopPointResult lp;

    Analyzed()
        : prog(generateProgram(findApp("628.pop2_s.1"),
                               InputClass::Test))
    {
        opts.numThreads =
            findApp("628.pop2_s.1").effectiveThreads(4);
        opts.sliceSizePerThread = 25'000;
        pipe = std::make_unique<LoopPointPipeline>(prog, opts);
        lp = pipe->analyze();
    }
};

const Analyzed &
analyzed()
{
    static Analyzed a;
    return a;
}

using CheckpointedSimResult = LoopPointPipeline::CheckpointedSimResult;

CheckpointedSimResult
runCheckpointed(const SimConfig &sim)
{
    return analyzed().pipe->simulateRegionsCheckpointed(
        analyzed().lp, sim, /*constrained=*/false, nullptr);
}

/** Bit-exact equality of two runs' simulated results (wall times and
 * host-side counters excluded: those legitimately differ). */
void
expectSameResults(const CheckpointedSimResult &a,
                  const CheckpointedSimResult &b)
{
    EXPECT_EQ(a.coverage, b.coverage);
    ASSERT_EQ(a.regionMetrics.size(), b.regionMetrics.size());
    for (size_t i = 0; i < a.regionMetrics.size(); ++i) {
        const SimMetrics &x = a.regionMetrics[i];
        const SimMetrics &y = b.regionMetrics[i];
        EXPECT_EQ(x.cycles, y.cycles) << "region " << i;
        EXPECT_EQ(x.instructions, y.instructions) << "region " << i;
        EXPECT_EQ(x.filteredInstructions, y.filteredInstructions)
            << "region " << i;
        EXPECT_EQ(x.runtimeSeconds, y.runtimeSeconds) << "region " << i;
        EXPECT_EQ(x.branches, y.branches) << "region " << i;
        EXPECT_EQ(x.branchMispredicts, y.branchMispredicts)
            << "region " << i;
        EXPECT_EQ(x.l1dAccesses, y.l1dAccesses) << "region " << i;
        EXPECT_EQ(x.l1dMisses, y.l1dMisses) << "region " << i;
        EXPECT_EQ(x.l2Accesses, y.l2Accesses) << "region " << i;
        EXPECT_EQ(x.l2Misses, y.l2Misses) << "region " << i;
        EXPECT_EQ(x.l3Accesses, y.l3Accesses) << "region " << i;
        EXPECT_EQ(x.l3Misses, y.l3Misses) << "region " << i;
    }
    ASSERT_EQ(a.regionOutcomes.size(), b.regionOutcomes.size());
    for (size_t i = 0; i < a.regionOutcomes.size(); ++i)
        EXPECT_EQ(a.regionOutcomes[i].ok, b.regionOutcomes[i].ok)
            << "region " << i;
}

TEST(ProcsBackend, BitIdenticalToPool)
{
    SimConfig pool;
    pool.jobs = 2;
    auto pool_res = runCheckpointed(pool);
    ASSERT_EQ(pool_res.coverage, 1.0);

    SimConfig procs;
    procs.backend = ExecBackendKind::Procs;
    procs.jobs = 2;
    auto procs_res = runCheckpointed(procs);
    EXPECT_EQ(procs_res.backend, ExecBackendKind::Procs);
    EXPECT_EQ(procs_res.workerDeaths, 0u);
    EXPECT_EQ(procs_res.workerRespawns, 0u);
    expectSameResults(pool_res, procs_res);
}

TEST(ProcsBackend, WorkerCountInvariance)
{
    SimConfig one;
    one.backend = ExecBackendKind::Procs;
    one.jobs = 1;
    auto serial = runCheckpointed(one);

    SimConfig three;
    three.backend = ExecBackendKind::Procs;
    three.jobs = 3;
    auto wide = runCheckpointed(three);
    expectSameResults(serial, wide);
}

TEST(ProcsBackend, KilledWorkerIsRespawnedBitIdentical)
{
    SimConfig clean;
    clean.jobs = 2;
    auto baseline = runCheckpointed(clean);

    // kill under procs SIGKILLs the worker process mid-region; the
    // coordinator must respawn, re-warm, retry, and end up with a run
    // indistinguishable from a fault-free one.
    SimConfig sim;
    sim.backend = ExecBackendKind::Procs;
    sim.jobs = 2;
    sim.regionRetries = 1;
    sim.faults = FaultPlan::parse("sim:region=0,kind=kill,times=1");
    auto ckpt = runCheckpointed(sim);
    EXPECT_EQ(ckpt.coverage, 1.0);
    EXPECT_EQ(ckpt.failedRegions(), 0u);
    EXPECT_EQ(ckpt.workerDeaths, 1u);
    EXPECT_EQ(ckpt.workerRespawns, 1u);
    expectSameResults(baseline, ckpt);
}

TEST(ProcsBackend, KilledWorkerWithoutRetryDropsRegion)
{
    SimConfig sim;
    sim.backend = ExecBackendKind::Procs;
    sim.jobs = 2;
    sim.regionRetries = 0;
    sim.faults = FaultPlan::parse("sim:region=0,kind=kill");
    auto ckpt = runCheckpointed(sim);
    EXPECT_LT(ckpt.coverage, 1.0);
    EXPECT_EQ(ckpt.failedRegions(), 1u);
    EXPECT_EQ(ckpt.workerDeaths, 1u);
    EXPECT_EQ(ckpt.workerRespawns, 0u);
    ASSERT_FALSE(ckpt.regionOutcomes.empty());
    EXPECT_FALSE(ckpt.regionOutcomes[0].ok);
}

TEST(ProcsBackend, WedgedWorkerKilledByTimeoutAndRetried)
{
    SimConfig clean;
    clean.jobs = 1;
    auto baseline = runCheckpointed(clean);

    SimConfig sim;
    sim.backend = ExecBackendKind::Procs;
    sim.jobs = 2;
    sim.regionRetries = 1;
    sim.workerTimeoutSeconds = 0.5;
    sim.faults = FaultPlan::parse("sim:region=0,kind=wedge,times=1");
    auto ckpt = runCheckpointed(sim);
    EXPECT_EQ(ckpt.coverage, 1.0);
    EXPECT_EQ(ckpt.workerDeaths, 1u);
    EXPECT_EQ(ckpt.workerRespawns, 1u);
    expectSameResults(baseline, ckpt);
}

TEST(PoolBackend, WedgeDegeneratesToRetryableThrow)
{
    // The pool backend cannot SIGKILL a thread, so wedge must behave
    // like a retryable throw there — the phase terminates either way.
    SimConfig sim;
    sim.jobs = 2;
    sim.regionRetries = 1;
    sim.faults = FaultPlan::parse("sim:region=0,kind=wedge,times=1");
    auto ckpt = runCheckpointed(sim);
    EXPECT_EQ(ckpt.coverage, 1.0);
    EXPECT_EQ(ckpt.failedRegions(), 0u);
    ASSERT_FALSE(ckpt.regionOutcomes.empty());
    EXPECT_EQ(ckpt.regionOutcomes[0].attempts, 2u);
}

} // namespace
} // namespace looppoint
