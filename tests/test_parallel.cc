/**
 * @file
 * Determinism of the host-parallel phases: the analysis and the
 * checkpointed region simulation must be bit-identical for any jobs
 * count. Runs the full pipeline with jobs=1 (serial path, no pool)
 * and jobs=4 (work-stealing pool) on two workloads and compares the
 * outputs with exact equality — including every double in the final
 * MetricPrediction.
 */

#include <gtest/gtest.h>

#include "core/looppoint.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"
#include "workload/descriptor.hh"

namespace looppoint {
namespace {

struct PipelineOutput
{
    LoopPointResult lp;
    LoopPointPipeline::CheckpointedSimResult ckpt;
    MetricPrediction pred;
};

PipelineOutput
runWithJobs(const char *app_name, uint32_t jobs)
{
    const AppDescriptor &app = findApp(app_name);
    LoopPointOptions opts;
    opts.numThreads = app.effectiveThreads(4);
    opts.sliceSizePerThread = 20'000;
    opts.jobs = jobs;
    Program prog = generateProgram(app, InputClass::Test);
    LoopPointPipeline pipe(prog, opts);

    PipelineOutput out;
    out.lp = pipe.analyze();
    SimConfig sim_cfg;
    sim_cfg.jobs = jobs;
    out.ckpt = pipe.simulateRegionsCheckpointed(out.lp, sim_cfg);
    out.pred =
        extrapolateMetrics(out.lp, out.ckpt.regionMetrics, sim_cfg);
    return out;
}

void
expectIdentical(const PipelineOutput &a, const PipelineOutput &b)
{
    // Analysis: same model selection, same per-slice assignment, same
    // region boundaries and weights.
    EXPECT_EQ(a.lp.chosenK, b.lp.chosenK);
    EXPECT_EQ(a.lp.assignment, b.lp.assignment);
    ASSERT_EQ(a.lp.regions.size(), b.lp.regions.size());
    for (size_t i = 0; i < a.lp.regions.size(); ++i) {
        EXPECT_EQ(a.lp.regions[i].start, b.lp.regions[i].start);
        EXPECT_EQ(a.lp.regions[i].end, b.lp.regions[i].end);
        // Exact: the multiplier math must not depend on the schedule.
        EXPECT_EQ(a.lp.regions[i].multiplier,
                  b.lp.regions[i].multiplier);
    }

    // Region simulation: every per-region metric identical.
    ASSERT_EQ(a.ckpt.regionMetrics.size(),
              b.ckpt.regionMetrics.size());
    for (size_t i = 0; i < a.ckpt.regionMetrics.size(); ++i) {
        const SimMetrics &ma = a.ckpt.regionMetrics[i];
        const SimMetrics &mb = b.ckpt.regionMetrics[i];
        EXPECT_EQ(ma.cycles, mb.cycles) << "region " << i;
        EXPECT_EQ(ma.instructions, mb.instructions) << "region " << i;
        EXPECT_EQ(ma.filteredInstructions, mb.filteredInstructions)
            << "region " << i;
        EXPECT_EQ(ma.branchMispredicts, mb.branchMispredicts)
            << "region " << i;
        EXPECT_EQ(ma.l1dMisses, mb.l1dMisses) << "region " << i;
        EXPECT_EQ(ma.l2Misses, mb.l2Misses) << "region " << i;
        EXPECT_EQ(ma.l3Misses, mb.l3Misses) << "region " << i;
    }

    // Final prediction: byte-identical doubles (operator== on every
    // field, not EXPECT_NEAR — reductions are per-region, serial).
    EXPECT_EQ(a.pred.runtimeSeconds, b.pred.runtimeSeconds);
    EXPECT_EQ(a.pred.cycles, b.pred.cycles);
    EXPECT_EQ(a.pred.instructions, b.pred.instructions);
    EXPECT_EQ(a.pred.filteredInstructions, b.pred.filteredInstructions);
    EXPECT_EQ(a.pred.branchMispredicts, b.pred.branchMispredicts);
    EXPECT_EQ(a.pred.l1dMisses, b.pred.l1dMisses);
    EXPECT_EQ(a.pred.l2Misses, b.pred.l2Misses);
    EXPECT_EQ(a.pred.l3Misses, b.pred.l3Misses);
}

TEST(ParallelDeterminism, Pop2JobsOneVsFour)
{
    PipelineOutput serial = runWithJobs("628.pop2_s.1", 1);
    PipelineOutput parallel = runWithJobs("628.pop2_s.1", 4);
    EXPECT_EQ(serial.ckpt.jobs, 1u);
    EXPECT_EQ(parallel.ckpt.jobs, 4u);
    expectIdentical(serial, parallel);
}

TEST(ParallelDeterminism, RomsJobsOneVsFour)
{
    PipelineOutput serial = runWithJobs("654.roms_s.1", 1);
    PipelineOutput parallel = runWithJobs("654.roms_s.1", 4);
    expectIdentical(serial, parallel);
}

TEST(ParallelDeterminism, FeatureMatrixAnyPoolWidth)
{
    const AppDescriptor &app = findApp("619.lbm_s.1");
    LoopPointOptions opts;
    opts.numThreads = app.effectiveThreads(4);
    opts.sliceSizePerThread = 20'000;
    Program prog = generateProgram(app, InputClass::Test);
    LoopPointPipeline pipe(prog, opts);
    LoopPointResult lp = pipe.analyze();

    FeatureMatrix serial =
        buildFeatureMatrix(prog, lp.slices, opts.projectionDims,
                           opts.seed, /*pool=*/nullptr);
    ThreadPool pool(3);
    FeatureMatrix parallel = buildFeatureMatrix(
        prog, lp.slices, opts.projectionDims, opts.seed, &pool);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "slice " << i;
}

TEST(ParallelDeterminism, PhaseStatsPopulated)
{
    PipelineOutput parallel = runWithJobs("628.pop2_s.1", 4);
    EXPECT_GT(parallel.ckpt.phaseWallSeconds, 0.0);
    EXPECT_GT(parallel.ckpt.serialEquivalentSeconds(), 0.0);
    EXPECT_GT(parallel.ckpt.hostParallelSpeedup(), 0.0);
    EXPECT_GT(parallel.ckpt.parallelEfficiency(), 0.0);
    EXPECT_EQ(parallel.ckpt.regionWallSeconds.size(),
              parallel.ckpt.regionMetrics.size());
}

} // namespace
} // namespace looppoint
