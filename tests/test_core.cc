/**
 * @file
 * Tests for the LoopPoint pipeline: multiplier/weight invariants,
 * slice tiling, extrapolation math, cross-policy stability of the
 * analysis, and end-to-end prediction accuracy on small workloads.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hh"
#include "core/looppoint.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "workload/descriptor.hh"

namespace looppoint {
namespace {

LoopPointOptions
smallOpts(uint32_t threads = 4)
{
    LoopPointOptions o;
    o.numThreads = threads;
    o.sliceSizePerThread = 20'000;
    return o;
}

TEST(LoopPoint, MultipliersAccountForAllWork)
{
    Program prog =
        generateProgram(findApp("628.pop2_s.1"), InputClass::Test);
    LoopPointPipeline pipe(prog, smallOpts());
    LoopPointResult lp = pipe.analyze();

    // Sum over regions of (multiplier x representative work) must
    // equal the total filtered work (Eq. 2 rearranged).
    double covered = 0.0;
    for (const auto &r : lp.regions)
        covered += r.multiplier *
                   static_cast<double>(r.filteredIcount);
    EXPECT_NEAR(covered, static_cast<double>(lp.totalFilteredIcount),
                1.0);
}

TEST(LoopPoint, SlicesTileTheProgram)
{
    Program prog =
        generateProgram(findApp("619.lbm_s.1"), InputClass::Test);
    LoopPointPipeline pipe(prog, smallOpts());
    LoopPointResult lp = pipe.analyze();
    ASSERT_GE(lp.slices.size(), 2u);
    for (size_t i = 0; i + 1 < lp.slices.size(); ++i)
        EXPECT_EQ(lp.slices[i].end, lp.slices[i + 1].start);
    EXPECT_TRUE(lp.slices.front().start.isProgramBoundary());
    EXPECT_TRUE(lp.slices.back().end.isProgramBoundary());
}

TEST(LoopPoint, AnalysisDeterministic)
{
    Program prog =
        generateProgram(findApp("654.roms_s.1"), InputClass::Test);
    LoopPointPipeline pipe(prog, smallOpts());
    LoopPointResult a = pipe.analyze();
    LoopPointResult b = pipe.analyze();
    EXPECT_EQ(a.chosenK, b.chosenK);
    EXPECT_EQ(a.assignment, b.assignment);
    ASSERT_EQ(a.regions.size(), b.regions.size());
    for (size_t i = 0; i < a.regions.size(); ++i) {
        EXPECT_EQ(a.regions[i].start, b.regions[i].start);
        EXPECT_DOUBLE_EQ(a.regions[i].multiplier,
                         b.regions[i].multiplier);
    }
}

TEST(LoopPoint, MarkersStableAcrossWaitPolicy)
{
    // Analyzing under active vs passive must produce identical region
    // boundaries and weights — the spin filter at work.
    Program prog =
        generateProgram(findApp("627.cam4_s.1"), InputClass::Test);
    LoopPointOptions active = smallOpts();
    active.waitPolicy = WaitPolicy::Active;
    LoopPointOptions passive = smallOpts();
    passive.waitPolicy = WaitPolicy::Passive;

    LoopPointResult a = LoopPointPipeline(prog, active).analyze();
    LoopPointResult p = LoopPointPipeline(prog, passive).analyze();

    ASSERT_EQ(a.slices.size(), p.slices.size());
    for (size_t i = 0; i < a.slices.size(); ++i)
        EXPECT_EQ(a.slices[i].end, p.slices[i].end);
    EXPECT_EQ(a.totalFilteredIcount, p.totalFilteredIcount);
}

TEST(LoopPoint, TheoreticalSpeedupsConsistent)
{
    Program prog =
        generateProgram(findApp("649.fotonik3d_s.1"), InputClass::Test);
    LoopPointPipeline pipe(prog, smallOpts());
    LoopPointResult lp = pipe.analyze();
    EXPECT_GE(lp.theoreticalParallelSpeedup(),
              lp.theoreticalSerialSpeedup());
    EXPECT_GE(lp.theoreticalSerialSpeedup(), 1.0);
}

TEST(LoopPoint, ExtrapolationMatchesHandComputation)
{
    LoopPointResult lp;
    lp.regions.resize(2);
    lp.regions[0].multiplier = 3.0;
    lp.regions[1].multiplier = 1.5;
    std::vector<SimMetrics> metrics(2);
    metrics[0].runtimeSeconds = 0.010;
    metrics[0].cycles = 100;
    metrics[0].instructions = 1000;
    metrics[0].branchMispredicts = 7;
    metrics[1].runtimeSeconds = 0.020;
    metrics[1].cycles = 300;
    metrics[1].instructions = 2000;
    metrics[1].branchMispredicts = 1;

    MetricPrediction p = extrapolateMetrics(lp, metrics, SimConfig{});
    EXPECT_NEAR(p.runtimeSeconds, 0.010 * 3.0 + 0.020 * 1.5, 1e-12);
    EXPECT_NEAR(p.cycles, 100 * 3.0 + 300 * 1.5, 1e-9);
    EXPECT_NEAR(p.instructions, 1000 * 3.0 + 2000 * 1.5, 1e-9);
    EXPECT_NEAR(p.branchMispredicts, 7 * 3.0 + 1 * 1.5, 1e-9);
}

TEST(LoopPoint, ExtrapolationRejectsMismatchedSizes)
{
    LoopPointResult lp;
    lp.regions.resize(2);
    std::vector<SimMetrics> metrics(1);
    EXPECT_THROW(extrapolateMetrics(lp, metrics, SimConfig{}),
                 FatalError);
}

TEST(LoopPoint, RejectsBadOptions)
{
    Program prog = generateProgram(demoMatrixApp(), InputClass::Test);
    LoopPointOptions o;
    o.numThreads = 0;
    EXPECT_THROW(LoopPointPipeline(prog, o), FatalError);
    LoopPointOptions o2;
    o2.sliceSizePerThread = 0;
    EXPECT_THROW(LoopPointPipeline(prog, o2), FatalError);
}

TEST(Experiment, EndToEndAccuracyOnSmallApps)
{
    // Integration sanity check on tiny test-class inputs. Test-class
    // runs are ~1-2M instructions, so the cold-start transient is a
    // visible fraction and errors are noisier than the train-class
    // results benchmarked in fig5_accuracy (~2% there); the bound here
    // only guards against gross regressions.
    for (const char *name : {"619.lbm_s.1", "654.roms_s.1"}) {
        ExperimentConfig cfg;
        cfg.app = name;
        cfg.input = InputClass::Test;
        cfg.requestedThreads = 4;
        cfg.loopPoint.sliceSizePerThread = 25'000;
        ExperimentResult r = runExperiment(cfg);
        EXPECT_TRUE(r.haveFullSim);
        EXPECT_LT(r.runtimeErrorPct, 15.0) << name;
        EXPECT_GT(r.theoreticalParallelSpeedup, 1.5) << name;
    }
}

TEST(Experiment, HonorsThreadOverride)
{
    ExperimentConfig cfg;
    cfg.app = "657.xz_s.2";
    cfg.input = InputClass::Test;
    cfg.requestedThreads = 8;
    cfg.loopPoint.sliceSizePerThread = 25'000;
    ExperimentResult r = runExperiment(cfg);
    EXPECT_EQ(r.threads, 4u);
}

TEST(Experiment, SkipFullSimulation)
{
    ExperimentConfig cfg;
    cfg.app = "demo-matrix";
    cfg.input = InputClass::Test;
    cfg.requestedThreads = 4;
    cfg.simulateFull = false;
    ExperimentResult r = runExperiment(cfg);
    EXPECT_FALSE(r.haveFullSim);
    EXPECT_EQ(r.runtimeErrorPct, 0.0);
    EXPECT_GT(r.theoreticalParallelSpeedup, 0.0);
}

TEST(Experiment, ConstrainedRegionsRun)
{
    ExperimentConfig cfg;
    cfg.app = "619.lbm_s.1";
    cfg.input = InputClass::Test;
    cfg.requestedThreads = 4;
    cfg.loopPoint.sliceSizePerThread = 25'000;
    cfg.constrainedRegions = true;
    ExperimentResult r = runExperiment(cfg);
    EXPECT_TRUE(r.haveFullSim);
    EXPECT_GE(r.runtimeErrorPct, 0.0);
}

TEST(LoopPoint, FeatureMatrixRowsMatchSlices)
{
    Program prog =
        generateProgram(findApp("619.lbm_s.1"), InputClass::Test);
    LoopPointPipeline pipe(prog, smallOpts());
    LoopPointResult lp = pipe.analyze();
    FeatureMatrix f = buildFeatureMatrix(prog, lp.slices, 32, 7);
    EXPECT_EQ(f.size(), lp.slices.size());
    for (const auto &row : f)
        EXPECT_EQ(row.size(), 32u);
}

} // namespace
} // namespace looppoint
