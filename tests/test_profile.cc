/**
 * @file
 * Tests for the slice profiler: slice sizing, (PC, count) boundary
 * semantics, spin filtering, per-thread BBV collection, and the
 * stability of boundaries across wait policies.
 */

#include <gtest/gtest.h>

#include "dcfg/dcfg.hh"
#include "exec/driver.hh"
#include "exec/engine.hh"
#include "isa/program_builder.hh"
#include "profile/slicer.hh"
#include "util/logging.hh"
#include "workload/descriptor.hh"

namespace looppoint {
namespace {

Program
makeProgram(uint64_t iters, uint64_t timesteps, double imbalance = 0.0)
{
    ProgramBuilder b("prof-test", 31);
    uint32_t k = b.beginKernel("work", SchedPolicy::StaticFor, iters);
    if (imbalance > 0)
        b.setImbalance(imbalance);
    b.addStream({.footprintBytes = 1 << 16, .strideBytes = 8});
    b.addBlock({.numInstrs = 30, .fracMem = 0.3, .streams = {0}});
    b.endKernel();
    b.runKernels({k}, timesteps);
    return b.build();
}

std::vector<BlockId>
markersOf(const Program &p, uint32_t threads, WaitPolicy policy)
{
    ExecConfig cfg{.numThreads = threads, .waitPolicy = policy};
    ExecutionEngine e(p, cfg);
    DcfgBuilder builder(p, threads);
    RoundRobinDriver d(e, 200);
    d.run(&builder);
    return builder.build().mainImageLoopHeaders();
}

std::vector<SliceRecord>
profileSlices(const Program &p, uint32_t threads, WaitPolicy policy,
              uint64_t slice_size, bool filter = true)
{
    auto markers = markersOf(p, threads, policy);
    ExecConfig cfg{.numThreads = threads, .waitPolicy = policy};
    ExecutionEngine e(p, cfg);
    SliceProfiler profiler(p, markers, slice_size, threads, filter);
    RoundRobinDriver d(e, 200);
    d.run(&profiler);
    profiler.finalize();
    return profiler.slices();
}

TEST(SliceProfiler, SlicesCoverWholeExecution)
{
    Program p = makeProgram(200, 4);
    auto slices = profileSlices(p, 4, WaitPolicy::Passive, 5'000);
    ASSERT_GT(slices.size(), 1u);

    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};
    ExecutionEngine e(p, cfg);
    RoundRobinDriver d(e, 200);
    d.run();

    uint64_t filtered_sum = 0, total_sum = 0;
    for (const auto &s : slices) {
        filtered_sum += s.filteredIcount;
        total_sum += s.totalIcount;
    }
    EXPECT_EQ(filtered_sum, e.globalFilteredIcount());
    EXPECT_EQ(total_sum, e.globalIcount());
}

TEST(SliceProfiler, SliceSizesNearTarget)
{
    Program p = makeProgram(400, 6);
    const uint64_t target = 40'000;
    auto slices = profileSlices(p, 4, WaitPolicy::Passive, target);
    ASSERT_GE(slices.size(), 3u);
    // All but the last slice must be >= target and not wildly larger
    // (the overshoot is bounded by the distance to the next marker).
    for (size_t i = 0; i + 1 < slices.size(); ++i) {
        EXPECT_GE(slices[i].filteredIcount, target);
        EXPECT_LT(slices[i].filteredIcount, target * 3);
    }
}

TEST(SliceProfiler, BoundariesAreMainImageMarkers)
{
    Program p = makeProgram(300, 5);
    auto slices = profileSlices(p, 4, WaitPolicy::Passive, 30'000);
    auto pc_index = buildPcIndex(p);
    for (size_t i = 0; i + 1 < slices.size(); ++i) {
        const Marker &m = slices[i].end;
        EXPECT_FALSE(m.isProgramBoundary());
        ASSERT_TRUE(pc_index.count(m.pc));
        EXPECT_TRUE(p.inMainImage(pc_index[m.pc]));
        EXPECT_GE(m.count, 1u);
        // Consecutive slices share the boundary marker.
        EXPECT_EQ(slices[i].end, slices[i + 1].start);
    }
    EXPECT_TRUE(slices.front().start.isProgramBoundary());
    EXPECT_TRUE(slices.back().end.isProgramBoundary());
}

TEST(SliceProfiler, FilteredCountsExcludeSpin)
{
    Program p = makeProgram(400, 3, /*imbalance=*/1.5);
    auto active = profileSlices(p, 4, WaitPolicy::Active, 30'000);
    auto passive = profileSlices(p, 4, WaitPolicy::Passive, 30'000);

    uint64_t active_filtered = 0, active_total = 0;
    for (const auto &s : active) {
        active_filtered += s.filteredIcount;
        active_total += s.totalIcount;
    }
    uint64_t passive_filtered = 0;
    for (const auto &s : passive)
        passive_filtered += s.filteredIcount;

    // Spin inflates total but not filtered counts; filtered work is
    // identical across policies.
    EXPECT_GT(active_total, active_filtered * 3 / 2);
    EXPECT_EQ(active_filtered, passive_filtered);
}

TEST(SliceProfiler, BoundaryMarkersStableAcrossPolicies)
{
    // The core LoopPoint claim: (PC, count) boundaries computed under
    // one policy identify the same points under the other.
    Program p = makeProgram(500, 4, /*imbalance=*/1.0);
    auto active = profileSlices(p, 4, WaitPolicy::Active, 40'000);
    auto passive = profileSlices(p, 4, WaitPolicy::Passive, 40'000);
    ASSERT_EQ(active.size(), passive.size());
    for (size_t i = 0; i < active.size(); ++i) {
        EXPECT_EQ(active[i].end, passive[i].end) << "slice " << i;
        EXPECT_EQ(active[i].filteredIcount, passive[i].filteredIcount);
    }
}

TEST(SliceProfiler, PerThreadBbvsReflectImbalance)
{
    Program p = makeProgram(600, 2, /*imbalance=*/1.5);
    auto slices = profileSlices(p, 4, WaitPolicy::Passive, 1'000'000);
    ASSERT_GE(slices.size(), 1u);
    const auto &s = slices[0];
    EXPECT_GT(s.threadFilteredIcount[0], s.threadFilteredIcount[3]);
}

TEST(SliceProfiler, UnfilteredModeCountsLibraryCode)
{
    Program p = makeProgram(300, 2, /*imbalance=*/1.0);
    auto filtered =
        profileSlices(p, 4, WaitPolicy::Active, 50'000, true);
    auto unfiltered =
        profileSlices(p, 4, WaitPolicy::Active, 50'000, false);
    uint64_t f = 0, u = 0;
    for (const auto &s : filtered)
        f += s.filteredIcount;
    for (const auto &s : unfiltered)
        u += s.filteredIcount; // "filtered" field counts all code now
    EXPECT_GT(u, f);
}

TEST(SliceProfiler, RejectsLibraryMarkers)
{
    Program p = makeProgram(100, 1);
    EXPECT_THROW(SliceProfiler(p, {p.runtime.spinWait}, 1000, 4),
                 FatalError);
}

TEST(SliceProfiler, RejectsZeroSliceSize)
{
    Program p = makeProgram(100, 1);
    EXPECT_THROW(SliceProfiler(p, {p.kernels[0].workerHeader}, 0, 4),
                 FatalError);
}

TEST(SliceProfiler, MarkerCountsMatchEngineCounts)
{
    Program p = makeProgram(150, 3);
    auto markers = markersOf(p, 2, WaitPolicy::Passive);
    ExecConfig cfg{.numThreads = 2, .waitPolicy = WaitPolicy::Passive};
    ExecutionEngine e(p, cfg);
    SliceProfiler profiler(p, markers, 25'000, 2);
    RoundRobinDriver d(e, 200);
    d.run(&profiler);
    profiler.finalize();
    for (BlockId m : markers)
        EXPECT_EQ(profiler.markerCount(m), e.blockExecCount(m));
}

TEST(PcIndex, MapsEveryBlock)
{
    Program p = makeProgram(10, 1);
    auto index = buildPcIndex(p);
    EXPECT_EQ(index.size(), p.numBlocks());
    for (const auto &bb : p.blocks)
        EXPECT_EQ(index.at(bb.pc), bb.id);
}

} // namespace
} // namespace looppoint
