/**
 * @file
 * Tests for DCFG construction and loop discovery: the discovered loops
 * must match the generator's ground truth (worker loops, inner loops,
 * spin self-loops), with correct images, trip counts, and marker sets.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "dcfg/dcfg.hh"
#include "exec/driver.hh"
#include "exec/engine.hh"
#include "isa/program_builder.hh"
#include "util/logging.hh"
#include "workload/descriptor.hh"

namespace looppoint {
namespace {

Program
makeLoopProgram(uint64_t iters, uint64_t inner_trips,
                uint64_t timesteps)
{
    ProgramBuilder b("dcfg-test", 17);
    uint32_t k = b.beginKernel("work", SchedPolicy::StaticFor, iters);
    b.addStream({.footprintBytes = 1 << 16, .strideBytes = 8});
    b.addBlock({.numInstrs = 20, .fracMem = 0.3, .streams = {0}});
    if (inner_trips > 0) {
        b.beginInnerLoop(inner_trips);
        b.addBlock({.numInstrs = 12, .fracMem = 0.4, .streams = {0}});
        b.endInnerLoop();
    }
    b.endKernel();
    b.runKernels({k}, timesteps);
    return b.build();
}

Dcfg
buildDcfg(const Program &p, uint32_t threads, WaitPolicy policy)
{
    ExecConfig cfg{.numThreads = threads, .waitPolicy = policy};
    ExecutionEngine e(p, cfg);
    DcfgBuilder builder(p, threads);
    RoundRobinDriver d(e, 200);
    d.run(&builder);
    return builder.build();
}

TEST(Dcfg, FindsWorkerLoop)
{
    Program p = makeLoopProgram(64, 0, 2);
    Dcfg dcfg = buildDcfg(p, 4, WaitPolicy::Passive);

    const BlockId wh = p.kernels[0].workerHeader;
    ASSERT_TRUE(dcfg.isLoopHeader(wh));
    const DcfgLoop &loop = dcfg.loopAt(wh);
    EXPECT_EQ(loop.image, ImageId::Main);
    EXPECT_EQ(loop.headerExecs, 64u * 2u);
    // The loop body contains the header and the latch.
    EXPECT_NE(std::find(loop.body.begin(), loop.body.end(),
                        p.kernels[0].workerLatch),
              loop.body.end());
}

TEST(Dcfg, FindsInnerLoopWithTripCounts)
{
    Program p = makeLoopProgram(32, 5, 1);
    Dcfg dcfg = buildDcfg(p, 2, WaitPolicy::Passive);

    // Find the inner loop item and its header.
    const BodyItem *inner = nullptr;
    for (const auto &item : p.kernels[0].body)
        if (item.kind == BodyItem::Kind::Loop)
            inner = &item;
    ASSERT_NE(inner, nullptr);
    ASSERT_TRUE(dcfg.isLoopHeader(inner->blocks[0]));
    const DcfgLoop &loop = dcfg.loopAt(inner->blocks[0]);
    // 32 iterations, 5 trips each: header executes 160 times, entered
    // 32 times, back edge taken 4 times per entry.
    EXPECT_EQ(loop.headerExecs, 32u * 5u);
    EXPECT_EQ(loop.entries, 32u);
    EXPECT_EQ(loop.backEdgeCount, 32u * 4u);
}

TEST(Dcfg, FindsSpinLoopInLibraryImage)
{
    // Active policy + imbalance: the spin-wait block self-loops.
    ProgramBuilder b("spin-test", 23);
    uint32_t k = b.beginKernel("work", SchedPolicy::StaticFor, 100);
    b.setImbalance(2.0);
    b.addBlock({.numInstrs = 40, .fracMem = 0.2, .streams = {}});
    b.endKernel();
    b.runKernels({k}, 1);
    Program p = b.build();

    Dcfg dcfg = buildDcfg(p, 4, WaitPolicy::Active);
    ASSERT_TRUE(dcfg.isLoopHeader(p.runtime.spinWait));
    EXPECT_EQ(dcfg.loopAt(p.runtime.spinWait).image, ImageId::LibIomp);
}

TEST(Dcfg, MainImageMarkersExcludeSpinLoops)
{
    ProgramBuilder b("spin-test2", 29);
    uint32_t k = b.beginKernel("work", SchedPolicy::StaticFor, 100);
    b.setImbalance(2.0);
    b.addBlock({.numInstrs = 40, .fracMem = 0.2, .streams = {}});
    b.endKernel();
    b.runKernels({k}, 1);
    Program p = b.build();

    Dcfg dcfg = buildDcfg(p, 4, WaitPolicy::Active);
    auto markers = dcfg.mainImageLoopHeaders();
    EXPECT_FALSE(markers.empty());
    for (BlockId m : markers) {
        EXPECT_TRUE(p.inMainImage(m));
        EXPECT_NE(m, p.runtime.spinWait);
    }
}

TEST(Dcfg, MarkersSortedByPc)
{
    Program p = generateProgram(findApp("603.bwaves_s.1"),
                                InputClass::Test);
    Dcfg dcfg = buildDcfg(p, 4, WaitPolicy::Passive);
    auto markers = dcfg.mainImageLoopHeaders();
    ASSERT_GE(markers.size(), 3u); // one worker loop per kernel
    for (size_t i = 1; i < markers.size(); ++i)
        EXPECT_LT(p.blocks[markers[i - 1]].pc, p.blocks[markers[i]].pc);
}

TEST(Dcfg, EdgeCountsConserved)
{
    Program p = makeLoopProgram(16, 3, 2);
    ExecConfig cfg{.numThreads = 2, .waitPolicy = WaitPolicy::Passive};
    ExecutionEngine e(p, cfg);
    DcfgBuilder builder(p, 2);
    RoundRobinDriver d(e, 100);
    d.run(&builder);
    Dcfg dcfg = builder.build();

    // Total edge traversals = total block events - one start per
    // thread (the first block of each thread has no incoming edge).
    uint64_t edge_total = 0;
    for (const auto &edge : dcfg.edges())
        edge_total += edge.count;
    uint64_t block_events = 0;
    for (BlockId bid = 0; bid < p.numBlocks(); ++bid)
        block_events += dcfg.blockExecs(bid);
    EXPECT_EQ(edge_total, block_events - 2);
}

TEST(Dcfg, LoopAtUnknownBlockIsFatal)
{
    Program p = makeLoopProgram(8, 0, 1);
    Dcfg dcfg = buildDcfg(p, 1, WaitPolicy::Passive);
    EXPECT_THROW(dcfg.loopAt(p.kernels[0].entryBlock), FatalError);
}

TEST(Dcfg, WorkerLoopStableAcrossPolicies)
{
    // The discovered main-image loop structure must not depend on the
    // wait policy (spin loops stay in the library image).
    Program p = makeLoopProgram(48, 4, 2);
    Dcfg active = buildDcfg(p, 4, WaitPolicy::Active);
    Dcfg passive = buildDcfg(p, 4, WaitPolicy::Passive);
    EXPECT_EQ(active.mainImageLoopHeaders(),
              passive.mainImageLoopHeaders());
    const BlockId wh = p.kernels[0].workerHeader;
    EXPECT_EQ(active.loopAt(wh).headerExecs,
              passive.loopAt(wh).headerExecs);
}

} // namespace
} // namespace looppoint
