/**
 * @file
 * Unit tests for src/util: rng determinism and distributions, stats
 * helpers, logging error paths.
 */

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace looppoint {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(Rng, ForkIsDeterministicAndIndependent)
{
    Rng base(7);
    Rng f1 = base.fork("alpha");
    Rng f2 = base.fork("alpha");
    Rng f3 = base.fork("beta");
    EXPECT_EQ(f1.next(), f2.next());
    Rng f4 = base.fork("alpha");
    EXPECT_NE(f4.next(), f3.next());
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Rng, BoundedCoversRange)
{
    Rng r(5);
    std::vector<int> hits(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++hits[r.nextBounded(8)];
    for (int h : hits)
        EXPECT_GT(h, 700); // each bucket near 1000
}

TEST(Rng, RangeInclusive)
{
    Rng r(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        int64_t v = r.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(13);
    for (int i = 0; i < 10000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng r(17);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(r.nextGaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.02);
    EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, BernoulliProbability)
{
    Rng r(19);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += r.nextBool(0.3);
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(HashString, StableAndDistinct)
{
    EXPECT_EQ(hashString("abc"), hashString("abc"));
    EXPECT_NE(hashString("abc"), hashString("abd"));
    EXPECT_NE(hashString(""), hashString("a"));
}

TEST(Stats, MeanAndStddev)
{
    std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
    EXPECT_NEAR(stddev(xs), 1.1180339887, 1e-9);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({}), 0.0);
}

TEST(Stats, GeoMean)
{
    EXPECT_NEAR(geoMean({1.0, 100.0}), 10.0, 1e-9);
    EXPECT_NEAR(geoMean({2.0, 2.0, 2.0}), 2.0, 1e-9);
}

TEST(Stats, Percentile)
{
    std::vector<double> xs{10, 20, 30, 40, 50};
    EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50), 30.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 25), 20.0);
}

TEST(Stats, RelError)
{
    EXPECT_DOUBLE_EQ(relErrorPct(110, 100), 10.0);
    EXPECT_DOUBLE_EQ(relErrorPct(90, 100), -10.0);
    EXPECT_DOUBLE_EQ(absRelErrorPct(90, 100), 10.0);
    EXPECT_DOUBLE_EQ(relErrorPct(0, 0), 0.0);
}

TEST(Stats, RunningStats)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.add(2.0);
    s.add(4.0);
    s.add(6.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_NEAR(s.stddev(), 1.632993, 1e-5);
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(fatal("bad config %d", 7), FatalError);
    try {
        fatal("value was %d", 42);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value was 42");
    }
}

TEST(Logging, StrFormat)
{
    EXPECT_EQ(strFormat("%s-%04d", "x", 7), "x-0007");
}

} // namespace
} // namespace looppoint
