/**
 * @file
 * Fault-tolerance layer tests, part 1: the building blocks. CRC32
 * checksums, FaultPlan parsing and application, and — the bulk — the
 * integrity-checked artifact loaders: per-byte-class corruption,
 * truncated streams, hostile in-range-but-wrong payloads, the legacy
 * v1 fallback, and the exhaustive no-fatal guard (every single-byte
 * flip and every truncation prefix of a valid artifact must come back
 * as a structured LoadError, never an exception).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "core/region_checkpoint.hh"
#include "isa/program_builder.hh"
#include "pinball/pinball.hh"
#include "pinball/pinball_io.hh"
#include "util/checksum.hh"
#include "util/fault.hh"
#include "util/logging.hh"

namespace looppoint {
namespace {

// ---------------------------------------------------------------- CRC32

TEST(Checksum, MatchesZlibKnownVectors)
{
    // The classic IEEE CRC32 check value: crc32(b"123456789").
    EXPECT_EQ(crc32(std::string_view("123456789")), 0xCBF43926u);
    EXPECT_EQ(crc32(std::string_view("")), 0u);
    // python3 -c "import zlib; print(hex(zlib.crc32(b'looppoint')))"
    EXPECT_EQ(crc32(std::string_view("hello")), 0x3610A686u);
}

TEST(Checksum, SeedChainsIncrementalUpdates)
{
    const std::string a = "region ", b = "pinball";
    EXPECT_EQ(crc32(b, crc32(a)), crc32(a + b));
}

TEST(Checksum, HexRoundTrip)
{
    EXPECT_EQ(crcHex(0xCBF43926u), "cbf43926");
    EXPECT_EQ(crcHex(0u), "00000000");
    for (uint32_t v : {0u, 1u, 0xCBF43926u, 0xFFFFFFFFu}) {
        uint32_t back = 0;
        ASSERT_TRUE(parseCrcHex(crcHex(v), back));
        EXPECT_EQ(back, v);
    }
}

TEST(Checksum, HexParseRejectsMalformedInput)
{
    uint32_t out = 12345;
    EXPECT_FALSE(parseCrcHex("", out));
    EXPECT_FALSE(parseCrcHex("cbf4392", out));    // 7 digits
    EXPECT_FALSE(parseCrcHex("cbf439261", out));  // 9 digits
    EXPECT_FALSE(parseCrcHex("cbf4392x", out));   // non-hex
    EXPECT_FALSE(parseCrcHex("CBF43926", out));   // not canonical case
    EXPECT_EQ(out, 12345u); // untouched on failure
}

// ------------------------------------------------------------ FaultPlan

TEST(FaultPlan, EmptySpecYieldsEmptyPlan)
{
    FaultPlan plan = FaultPlan::parse("");
    EXPECT_TRUE(plan.empty());
    EXPECT_FALSE(plan.simFault(0, 0).has_value());
}

TEST(FaultPlan, ParsesSimClauses)
{
    FaultPlan plan = FaultPlan::parse(
        "sim:region=3,kind=throw;sim:region=7,kind=diverge;"
        "sim:region=9,kind=kill,times=2");
    ASSERT_EQ(plan.specs().size(), 3u);
    EXPECT_EQ(plan.specs()[0].site, FaultSpec::Site::Sim);
    EXPECT_EQ(plan.specs()[0].kind, FaultSpec::Kind::Throw);
    EXPECT_EQ(plan.specs()[0].region, 3u);
    EXPECT_EQ(plan.specs()[0].times, 0u);
    EXPECT_EQ(plan.specs()[1].kind, FaultSpec::Kind::Diverge);
    EXPECT_EQ(plan.specs()[2].kind, FaultSpec::Kind::Kill);
    EXPECT_EQ(plan.specs()[2].times, 2u);
}

TEST(FaultPlan, SimFaultHonorsTimesBudget)
{
    FaultPlan plan = FaultPlan::parse("sim:region=3,kind=throw,times=1");
    ASSERT_TRUE(plan.simFault(3, 0).has_value());
    EXPECT_EQ(*plan.simFault(3, 0), FaultSpec::Kind::Throw);
    EXPECT_FALSE(plan.simFault(3, 1).has_value()); // budget spent
    EXPECT_FALSE(plan.simFault(2, 0).has_value()); // other region

    // times=0 (the default) matches every attempt.
    FaultPlan all = FaultPlan::parse("sim:region=3,kind=diverge");
    EXPECT_TRUE(all.simFault(3, 0).has_value());
    EXPECT_TRUE(all.simFault(3, 99).has_value());
}

TEST(FaultPlan, SimKindDefaultsToThrow)
{
    FaultPlan plan = FaultPlan::parse("sim:region=5");
    ASSERT_EQ(plan.specs().size(), 1u);
    EXPECT_EQ(plan.specs()[0].kind, FaultSpec::Kind::Throw);
}

TEST(FaultPlan, CorruptFlipsRequestedByteModuloSize)
{
    FaultPlan plan = FaultPlan::parse("corrupt:byte=17");
    std::string bytes(32, 'a');
    std::string expect = bytes;
    expect[17] = static_cast<char>('a' ^ 0xFF);
    plan.corrupt(bytes);
    EXPECT_EQ(bytes, expect);

    // Offsets wrap instead of indexing out of range.
    std::string small(4, 'b');
    std::string expect_small = small;
    expect_small[17 % 4] = static_cast<char>('b' ^ 0xFF);
    plan.corrupt(small);
    EXPECT_EQ(small, expect_small);

    // Empty payloads are left alone (no UB, no crash).
    std::string empty;
    plan.corrupt(empty);
    EXPECT_TRUE(empty.empty());
}

TEST(FaultPlan, SeededCorruptionIsDeterministic)
{
    FaultPlan plan = FaultPlan::parse("corrupt:byte=rand,seed=7");
    std::string a(64, 'x'), b(64, 'x');
    plan.corrupt(a);
    plan.corrupt(b);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, std::string(64, 'x')); // it did flip something

    // A different seed picks a different offset for this size.
    std::string c(64, 'x');
    FaultPlan::parse("corrupt:byte=rand,seed=8").corrupt(c);
    EXPECT_NE(c, a);
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    EXPECT_THROW(FaultPlan::parse("noclausesite"), FatalError);
    EXPECT_THROW(FaultPlan::parse("bogus:region=1"), FatalError);
    EXPECT_THROW(FaultPlan::parse("sim:kind=throw"), FatalError);
    EXPECT_THROW(FaultPlan::parse("sim:region=x,kind=throw"),
                 FatalError);
    EXPECT_THROW(FaultPlan::parse("sim:region=1,kind=explode"),
                 FatalError);
    EXPECT_THROW(FaultPlan::parse("sim:region=1,what=ever"),
                 FatalError);
    EXPECT_THROW(FaultPlan::parse("sim:region=1;;sim:region=2"),
                 FatalError);
    EXPECT_THROW(FaultPlan::parse("corrupt:seed=3"), FatalError);
    EXPECT_THROW(FaultPlan::parse("sim:region"), FatalError);
}

// ------------------------------------------------ artifact fixtures

Program
makeSmallProgram()
{
    ProgramBuilder b("fault-fixture", 11);
    uint32_t k = b.beginKernel("k", SchedPolicy::DynamicFor, 48, 4);
    b.addStream({.footprintBytes = 1 << 14, .strideBytes = 8});
    b.addBlock({.numInstrs = 16, .fracMem = 0.25, .streams = {0}});
    b.addCritical(0, {.numInstrs = 6, .streams = {0}});
    b.endKernel();
    b.runKernels({k}, 2);
    return b.build();
}

Pinball
makePinball()
{
    Program p = makeSmallProgram();
    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};
    return recordPinball(p, cfg, 200);
}

RegionPinball
makeRegionPinball()
{
    RegionPinball rp;
    rp.app = "demo-matrix";
    rp.input = InputClass::Test;
    rp.config.numThreads = 4;
    rp.config.waitPolicy = WaitPolicy::Passive;
    rp.config.seed = 21;
    Pinball pb = makePinball();
    rp.log = pb.log;
    rp.start = Marker{0x400100, 17};
    rp.end = Marker{0x400200, 23};
    rp.multiplier = 3.25;
    rp.filteredIcount = 12'345;
    return rp;
}

std::string
serialize(const Pinball &pb)
{
    std::ostringstream os;
    pb.save(os);
    return os.str();
}

std::string
serialize(const RegionPinball &rp)
{
    std::ostringstream os;
    rp.save(os);
    return os.str();
}

LoadResult<Pinball>
loadPinball(const std::string &bytes)
{
    std::istringstream is(bytes);
    return Pinball::tryLoad(is);
}

LoadResult<RegionPinball>
loadRegion(const std::string &bytes)
{
    std::istringstream is(bytes);
    return RegionPinball::tryLoad(is);
}

/** The payload bytes between the "length N\n" header and the
 * checksum trailer of a framed artifact. */
std::string
extractPayload(const std::string &artifact)
{
    const std::string tag = "\nlength ";
    size_t pos = artifact.find(tag);
    EXPECT_NE(pos, std::string::npos);
    pos += tag.size();
    size_t eol = artifact.find('\n', pos);
    EXPECT_NE(eol, std::string::npos);
    size_t length = std::stoull(artifact.substr(pos, eol - pos));
    return artifact.substr(eol + 1, length);
}

/** Re-frame a (tampered) payload with a *correct* CRC, so tests reach
 * the payload validation logic instead of tripping the checksum. */
std::string
reframe(const std::string &magic_base, const std::string &payload)
{
    std::ostringstream os;
    writeFramedArtifact(os, magic_base, 2, payload);
    return os.str();
}

/** Replace the first occurrence of `from` (must exist) with `to`. */
std::string
replaced(const std::string &text, const std::string &from,
         const std::string &to)
{
    size_t pos = text.find(from);
    EXPECT_NE(pos, std::string::npos) << "missing '" << from << "'";
    std::string out = text;
    out.replace(pos, from.size(), to);
    return out;
}

constexpr const char *kPinMagic = "looppoint-pinball-v";
constexpr const char *kRegionMagic = "looppoint-region-pinball-v";

// ------------------------------------------- framing corruption classes

TEST(ArtifactIntegrity, PinballRoundTrips)
{
    Pinball pb = makePinball();
    auto result = loadPinball(serialize(pb));
    ASSERT_TRUE(result.ok()) << result.error().describe();
    EXPECT_EQ(result.value(), pb);
}

TEST(ArtifactIntegrity, RegionPinballRoundTrips)
{
    RegionPinball rp = makeRegionPinball();
    auto result = loadRegion(serialize(rp));
    ASSERT_TRUE(result.ok()) << result.error().describe();
    EXPECT_EQ(result.value(), rp);
}

TEST(ArtifactIntegrity, CorruptMagicIsBadMagic)
{
    std::string bytes = serialize(makePinball());
    bytes[0] = 'X';
    auto result = loadPinball(bytes);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, LoadErrorKind::BadMagic);
}

TEST(ArtifactIntegrity, FutureVersionIsUnknownVersion)
{
    std::string bytes = replaced(serialize(makePinball()),
                                 "looppoint-pinball-v2",
                                 "looppoint-pinball-v9");
    auto result = loadPinball(bytes);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, LoadErrorKind::UnknownVersion);
}

TEST(ArtifactIntegrity, VersionFieldMagicDisagreementIsParse)
{
    std::string bytes = replaced(serialize(makePinball()),
                                 "\nversion 2\n", "\nversion 3\n");
    auto result = loadPinball(bytes);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, LoadErrorKind::Parse);
}

TEST(ArtifactIntegrity, FlippedPayloadByteIsBadChecksum)
{
    std::string bytes = serialize(makeRegionPinball());
    const std::string payload = extractPayload(bytes);
    size_t payload_at = bytes.find(payload);
    ASSERT_NE(payload_at, std::string::npos);
    bytes[payload_at + payload.size() / 2] ^= 0x01;
    auto result = loadRegion(bytes);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, LoadErrorKind::BadChecksum);
}

TEST(ArtifactIntegrity, TamperedChecksumDigitIsBadChecksum)
{
    std::string bytes = serialize(makePinball());
    // Swap the final checksum digit for a different valid hex digit.
    size_t at = bytes.rfind("checksum ");
    ASSERT_NE(at, std::string::npos);
    char &digit = bytes[at + 9 + 7];
    digit = digit == 'a' ? 'b' : 'a';
    auto result = loadPinball(bytes);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, LoadErrorKind::BadChecksum);
}

TEST(ArtifactIntegrity, TruncatedPayloadIsTruncated)
{
    std::string bytes = serialize(makeRegionPinball());
    auto result = loadRegion(bytes.substr(0, bytes.size() / 2));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, LoadErrorKind::Truncated);
}

TEST(ArtifactIntegrity, EmptyStreamIsTruncated)
{
    auto result = loadPinball("");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, LoadErrorKind::Truncated);
}

TEST(ArtifactIntegrity, FaultPlanCorruptionIsDetected)
{
    // The corrupt-site clause and the loader, end to end: flip one
    // artifact byte via the fault plan, the loader must notice.
    std::string bytes = serialize(makePinball());
    FaultPlan::parse("corrupt:byte=rand,seed=3").corrupt(bytes);
    EXPECT_FALSE(loadPinball(bytes).ok());
}

TEST(ArtifactIntegrity, LegacyApiThrowsFatalErrorOnCorruption)
{
    std::string bytes = serialize(makePinball());
    bytes[bytes.size() / 2] ^= 0xFF;
    std::istringstream is(bytes);
    EXPECT_THROW(Pinball::load(is), FatalError);

    std::string rbytes = serialize(makeRegionPinball());
    rbytes[rbytes.size() / 2] ^= 0xFF;
    std::istringstream ris(rbytes);
    EXPECT_THROW(RegionPinball::load(ris), FatalError);
}

// -------------------------------------------------- hostile payloads

TEST(HostileInput, RegionMultiplierNegativeIsValidation)
{
    RegionPinball rp = makeRegionPinball();
    rp.multiplier = -2.5;
    auto result = loadRegion(serialize(rp));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, LoadErrorKind::Validation);
    EXPECT_NE(result.error().message.find("negative"),
              std::string::npos);
}

TEST(HostileInput, RegionMultiplierNaNIsRejected)
{
    RegionPinball rp = makeRegionPinball();
    rp.multiplier = std::nan("");
    auto result = loadRegion(serialize(rp));
    ASSERT_FALSE(result.ok());
    // Stream extraction may refuse "nan" (Parse) or hand it through to
    // the isfinite() check (Validation); either way it cannot load.
    EXPECT_TRUE(result.error().kind == LoadErrorKind::Parse ||
                result.error().kind == LoadErrorKind::Validation);
}

TEST(HostileInput, RegionMarkerWithZeroCountIsValidation)
{
    RegionPinball rp = makeRegionPinball();
    rp.end = Marker{0x400200, 0};
    auto result = loadRegion(serialize(rp));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, LoadErrorKind::Validation);
    EXPECT_NE(result.error().message.find("zero count"),
              std::string::npos);
}

TEST(HostileInput, ThreadCountTableMismatchIsValidation)
{
    Pinball pb = makePinball();
    pb.threadIcounts.pop_back();
    auto result = loadPinball(serialize(pb));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, LoadErrorKind::Validation);
    EXPECT_NE(result.error().message.find("icount table"),
              std::string::npos);
}

TEST(HostileInput, HugeThreadCountIsValidation)
{
    std::string payload = extractPayload(serialize(makePinball()));
    payload = replaced(payload, "threads 4", "threads 999999");
    auto result = loadPinball(reframe(kPinMagic, payload));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, LoadErrorKind::Validation);
}

TEST(HostileInput, IcountOverflowIsValidation)
{
    Pinball pb = makePinball();
    const uint64_t huge = UINT64_MAX;
    pb.threadIcounts.assign(pb.threadIcounts.size(), huge);
    pb.threadFilteredIcounts.assign(pb.threadFilteredIcounts.size(), 0);
    auto result = loadPinball(serialize(pb));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, LoadErrorKind::Validation);
    EXPECT_NE(result.error().message.find("overflow"),
              std::string::npos);
}

TEST(HostileInput, FilteredExceedingTotalIsValidation)
{
    Pinball pb = makePinball();
    pb.threadFilteredIcounts[0] = pb.threadIcounts[0] + 1;
    auto result = loadPinball(serialize(pb));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, LoadErrorKind::Validation);
    EXPECT_NE(result.error().message.find("exceeds"),
              std::string::npos);
}

TEST(HostileInput, OutOfRangeSyncTidIsValidation)
{
    Pinball pb = makePinball();
    ASSERT_FALSE(pb.log.lockOrder.empty());
    pb.log.lockOrder[0].push_back(99); // only 4 threads exist
    auto result = loadPinball(serialize(pb));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, LoadErrorKind::Validation);
    EXPECT_NE(result.error().message.find("tid"), std::string::npos);
}

TEST(HostileInput, DuplicateSyncRosterTidIsValidation)
{
    std::string payload = extractPayload(serialize(makePinball()));
    payload = replaced(payload, "synctids 4 0 1 2 3",
                       "synctids 4 0 1 1 3");
    auto result = loadPinball(reframe(kPinMagic, payload));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, LoadErrorKind::Validation);
}

TEST(HostileInput, UnsortedSyncRosterTidIsValidation)
{
    std::string payload = extractPayload(serialize(makePinball()));
    payload = replaced(payload, "synctids 4 0 1 2 3",
                       "synctids 4 0 1 0 3");
    auto result = loadPinball(reframe(kPinMagic, payload));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, LoadErrorKind::Validation);
    EXPECT_NE(result.error().message.find("unsorted"),
              std::string::npos);
}

TEST(HostileInput, RosterThreadCountMismatchIsValidation)
{
    std::string payload = extractPayload(serialize(makePinball()));
    payload = replaced(payload, "synctids 4 0 1 2 3",
                       "synctids 3 0 1 2");
    auto result = loadPinball(reframe(kPinMagic, payload));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, LoadErrorKind::Validation);
}

TEST(HostileInput, OversizedIcountTableClaimIsValidation)
{
    std::string payload = extractPayload(serialize(makePinball()));
    size_t at = payload.find("icounts 4");
    ASSERT_NE(at, std::string::npos);
    payload.replace(at, 9, "icounts 4294967296");
    auto result = loadPinball(reframe(kPinMagic, payload));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, LoadErrorKind::Validation);
    EXPECT_NE(result.error().message.find("claims"), std::string::npos);
}

TEST(HostileInput, UnknownRegionInputClassIsParse)
{
    std::string payload = extractPayload(serialize(makeRegionPinball()));
    payload = replaced(payload, "input test", "input bogus");
    auto result = loadRegion(reframe(kRegionMagic, payload));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().kind, LoadErrorKind::Parse);
}

// ------------------------------------------------- legacy v1 fallback

/** A v1 artifact is the v1 magic line plus the bare payload — no
 * version/length lines, no checksum, no synctids roster. */
std::string
asLegacyV1(const std::string &magic_base, std::string payload)
{
    size_t at = payload.find("synctids ");
    EXPECT_NE(at, std::string::npos);
    size_t eol = payload.find('\n', at);
    payload.erase(at, eol - at + 1);
    return magic_base + "1\n" + payload;
}

TEST(LegacyFormat, PinballV1StillLoads)
{
    Pinball pb = makePinball();
    std::string v1 = asLegacyV1(kPinMagic,
                                extractPayload(serialize(pb)));
    auto result = loadPinball(v1);
    ASSERT_TRUE(result.ok()) << result.error().describe();
    EXPECT_EQ(result.value(), pb);
}

TEST(LegacyFormat, RegionPinballV1StillLoads)
{
    RegionPinball rp = makeRegionPinball();
    std::string v1 = asLegacyV1(kRegionMagic,
                                extractPayload(serialize(rp)));
    auto result = loadRegion(v1);
    ASSERT_TRUE(result.ok()) << result.error().describe();
    EXPECT_EQ(result.value(), rp);
}

// ------------------------------------------------ exhaustive no-fatal

/**
 * The loader hardening guarantee behind the whole fault-tolerance
 * layer: *no* byte-level mutation of an artifact may escape as an
 * exception (the old fatal() behavior) or slip through as a clean
 * load. Every single-byte flip and every truncation prefix must come
 * back as a structured LoadError.
 */
template <typename T, typename LoadFn>
void
exhaustiveMutationGuard(const T &original, const std::string &bytes,
                        LoadFn load)
{
    for (size_t i = 0; i < bytes.size(); ++i) {
        std::string mutated = bytes;
        mutated[i] ^= 0xFF;
        SCOPED_TRACE("flip at byte " + std::to_string(i));
        ASSERT_NO_THROW({
            auto result = load(mutated);
            EXPECT_FALSE(result.ok());
        });
    }
    // Truncations must fail — except where only trailing whitespace
    // after the checksum is lost, in which case the load must still
    // be *exact* (no silent partial data).
    for (size_t len = 0; len < bytes.size(); ++len) {
        SCOPED_TRACE("truncate to " + std::to_string(len) + " bytes");
        ASSERT_NO_THROW({
            auto result = load(bytes.substr(0, len));
            if (result.ok()) {
                EXPECT_EQ(result.value(), original);
            }
        });
    }
}

TEST(NoFatalGuard, PinballSurvivesEveryFlipAndTruncation)
{
    Pinball pb = makePinball();
    exhaustiveMutationGuard(pb, serialize(pb), loadPinball);
}

TEST(NoFatalGuard, RegionPinballSurvivesEveryFlipAndTruncation)
{
    RegionPinball rp = makeRegionPinball();
    exhaustiveMutationGuard(rp, serialize(rp), loadRegion);
}

} // namespace
} // namespace looppoint
