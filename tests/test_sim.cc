/**
 * @file
 * Tests for the timing substrate: caches (geometry, LRU, coherence,
 * inclusion), the Pentium M-style branch predictor, the core models,
 * and MulticoreSim behavior (determinism, policy effects, region
 * tiling).
 */

#include <gtest/gtest.h>

#include "isa/program_builder.hh"
#include "sim/branch_predictor.hh"
#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/multicore.hh"
#include "util/logging.hh"
#include "workload/descriptor.hh"

namespace looppoint {
namespace {

TEST(Cache, HitsAfterFill)
{
    Cache c(CacheConfig{1024, 2, 64, 1});
    EXPECT_FALSE(c.access(0x1000, 0, false, nullptr)); // miss, fill
    EXPECT_TRUE(c.access(0x1000, 0, false, nullptr));  // hit
    EXPECT_TRUE(c.access(0x1020, 0, false, nullptr));  // same line
    EXPECT_EQ(c.stats().accesses, 3u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, LruEviction)
{
    // 2-way, 64B lines, 1024B => 8 sets. Lines mapping to set 0:
    // 0x0000, 0x0200, 0x0400 (line index multiples of 8).
    Cache c(CacheConfig{1024, 2, 64, 1});
    c.access(0x0000, 0, false, nullptr);
    c.access(0x0200, 0, false, nullptr);
    c.access(0x0000, 0, false, nullptr); // touch: 0x200 becomes LRU
    std::optional<Addr> evicted;
    c.access(0x0400, 0, false, &evicted); // evicts 0x200
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 0x200u);
    EXPECT_TRUE(c.contains(0x0000));
    EXPECT_FALSE(c.contains(0x0200));
    EXPECT_TRUE(c.contains(0x0400));
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c(CacheConfig{1024, 2, 64, 1});
    c.access(0x40, 0, false, nullptr);
    EXPECT_TRUE(c.contains(0x40));
    EXPECT_TRUE(c.invalidate(0x40));
    EXPECT_FALSE(c.contains(0x40));
    EXPECT_FALSE(c.invalidate(0x40));
}

TEST(Cache, SharerTracking)
{
    Cache c(CacheConfig{1024, 2, 64, 1});
    c.access(0x80, 0, false, nullptr);
    c.access(0x80, 3, false, nullptr);
    EXPECT_EQ(c.sharers(0x80), 0b1001ull);
    c.removeSharer(0x80, 0);
    EXPECT_EQ(c.sharers(0x80), 0b1000ull);
}

TEST(Hierarchy, LatenciesGrowWithDepth)
{
    SimConfig cfg;
    CacheHierarchy h(cfg, 2);
    auto first = h.access(0, 0x100000, false);
    EXPECT_EQ(first.hitLevel, 4u); // cold: memory
    EXPECT_GE(first.latency, cfg.memLatency);
    auto second = h.access(0, 0x100000, false);
    EXPECT_EQ(second.hitLevel, 1u); // L1 hit
    EXPECT_EQ(second.latency, cfg.l1d.latency);
}

TEST(Hierarchy, WriteInvalidatesRemoteCopies)
{
    SimConfig cfg;
    CacheHierarchy h(cfg, 2);
    h.access(0, 0x4000, false); // core 0 reads
    h.access(1, 0x4000, false); // core 1 reads (L3 hit)
    EXPECT_EQ(h.l1dStats(0).misses, 1u);
    h.access(1, 0x4000, true); // core 1 writes -> invalidate core 0
    auto r = h.access(0, 0x4000, false);
    EXPECT_GT(r.hitLevel, 1u) << "core 0's copy must be invalidated";
    EXPECT_GE(h.l1dStats(0).invalidations, 1u);
}

TEST(Hierarchy, CoherencePingPongCostsCycles)
{
    SimConfig cfg;
    CacheHierarchy h(cfg, 2);
    // Alternating writes to one line from two cores never settle in
    // either L1.
    uint32_t l1_hits = 0;
    for (int i = 0; i < 20; ++i) {
        auto r = h.access(i % 2, 0x9000, true);
        l1_hits += (r.hitLevel == 1);
    }
    EXPECT_LT(l1_hits, 4u);
}

TEST(BranchPredictor, LearnsBias)
{
    PentiumMBranchPredictor bp;
    for (int i = 0; i < 1000; ++i)
        bp.predictAndTrain(0x400100, true);
    // After warmup, an always-taken branch is nearly perfect.
    EXPECT_LT(bp.stats().missRate(), 0.02);
}

TEST(BranchPredictor, LoopDetectorLearnsTripCount)
{
    PentiumMBranchPredictor bp;
    // A loop branch: taken 7 times, then not taken, repeatedly.
    for (int rep = 0; rep < 200; ++rep)
        for (int i = 0; i < 8; ++i)
            bp.predictAndTrain(0x400200, i < 7);
    // The loop detector should nail the exit after warmup: well under
    // the 1/8 misrate a taken-biased predictor would produce.
    EXPECT_LT(bp.stats().missRate(), 0.04);
}

TEST(BranchPredictor, RandomBranchesMispredict)
{
    PentiumMBranchPredictor bp;
    Rng rng(5);
    for (int i = 0; i < 20000; ++i)
        bp.predictAndTrain(0x400300, rng.nextBool(0.5));
    EXPECT_GT(bp.stats().missRate(), 0.35);
}

Program
tinyProgram(uint64_t iters = 128, uint64_t steps = 2)
{
    ProgramBuilder b("sim-test", 41);
    uint32_t k = b.beginKernel("work", SchedPolicy::StaticFor, iters);
    b.addStream({.footprintBytes = 1 << 20, .strideBytes = 8});
    b.addBlock({.numInstrs = 40, .fracMem = 0.35, .fracFp = 0.3,
                .streams = {0}});
    b.endKernel();
    b.runKernels({k}, steps);
    return b.build();
}

TEST(MulticoreSim, RunsAndProducesPlausibleIpc)
{
    Program p = tinyProgram();
    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};
    MulticoreSim sim(p, cfg, SimConfig{});
    SimMetrics m = sim.run();
    EXPECT_GT(m.instructions, 10'000u);
    EXPECT_GT(m.cycles, 0u);
    EXPECT_GT(m.ipc(), 0.3);
    EXPECT_LT(m.ipc(), 4.0 * 4); // <= cores x width
    EXPECT_GT(m.branches, 0u);
    EXPECT_GT(m.l1dAccesses, 0u);
}

TEST(MulticoreSim, DeterministicAcrossRuns)
{
    Program p = tinyProgram();
    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Active};
    SimMetrics a = MulticoreSim(p, cfg, SimConfig{}).run();
    SimMetrics b = MulticoreSim(p, cfg, SimConfig{}).run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
}

TEST(MulticoreSim, InOrderIsSlower)
{
    Program p = tinyProgram(256, 2);
    ExecConfig cfg{.numThreads = 2, .waitPolicy = WaitPolicy::Passive};
    SimConfig ooo;
    SimConfig ino;
    ino.coreType = CoreType::InOrder;
    SimMetrics m_ooo = MulticoreSim(p, cfg, ooo).run();
    SimMetrics m_ino = MulticoreSim(p, cfg, ino).run();
    EXPECT_GT(m_ino.cycles, m_ooo.cycles);
}

TEST(MulticoreSim, ActiveWaitBurnsInstructionsNotTime)
{
    // With imbalance, the active policy executes many more
    // instructions (spin) but finishes in roughly the same time as
    // passive (the critical path is the busy thread).
    ProgramBuilder b("imb-sim", 43);
    uint32_t k = b.beginKernel("work", SchedPolicy::StaticFor, 256);
    b.setImbalance(1.5);
    b.addBlock({.numInstrs = 40, .fracMem = 0.3, .streams = {}});
    b.endKernel();
    b.runKernels({k}, 2);
    Program p = b.build();

    ExecConfig act{.numThreads = 4, .waitPolicy = WaitPolicy::Active};
    ExecConfig pas{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};
    SimMetrics m_act = MulticoreSim(p, act, SimConfig{}).run();
    SimMetrics m_pas = MulticoreSim(p, pas, SimConfig{}).run();
    EXPECT_GT(m_act.instructions, m_pas.instructions * 5 / 4);
    EXPECT_NEAR(static_cast<double>(m_act.cycles),
                static_cast<double>(m_pas.cycles),
                0.25 * static_cast<double>(m_pas.cycles));
}

TEST(MulticoreSim, MoreThreadsRunFaster)
{
    Program p = tinyProgram(1024, 2);
    SimConfig sc;
    ExecConfig c1{.numThreads = 1, .waitPolicy = WaitPolicy::Passive};
    ExecConfig c8{.numThreads = 8, .waitPolicy = WaitPolicy::Passive};
    SimMetrics m1 = MulticoreSim(p, c1, sc).run();
    SimMetrics m8 = MulticoreSim(p, c8, sc).run();
    EXPECT_LT(m8.cycles, m1.cycles / 3); // decent parallel scaling
}

TEST(MulticoreSim, RegionsTileTheExecution)
{
    // Simulating [start, mid) and [mid, end) separately must cover the
    // same work as one full run.
    Program p = tinyProgram(512, 4);
    const BlockId wh = p.kernels[0].workerHeader;
    const Addr wh_pc = p.blocks[wh].pc;

    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};
    SimConfig sc;

    SimMetrics full = MulticoreSim(p, cfg, sc).run();

    SimMetrics first =
        MulticoreSim(p, cfg, sc).runRegion(0, 0, wh_pc, 1024);
    SimMetrics second =
        MulticoreSim(p, cfg, sc).runRegion(wh_pc, 1024, 0, 0);
    // The (PC, count) cut conserves marker work exactly, but the
    // positions of the *other* threads at the cut differ slightly
    // between the detailed and fast-forward schedulers, so instruction
    // totals match only to within a small boundary skew.
    double instr_sum =
        static_cast<double>(first.instructions + second.instructions);
    EXPECT_NEAR(instr_sum, static_cast<double>(full.instructions),
                0.01 * static_cast<double>(full.instructions));
    double combined = static_cast<double>(first.cycles + second.cycles);
    EXPECT_NEAR(combined, static_cast<double>(full.cycles),
                0.15 * static_cast<double>(full.cycles));
}

TEST(MulticoreSim, WarmupReducesRegionError)
{
    // A late region simulated with warmup should see fewer cache
    // misses than without.
    Program p = tinyProgram(512, 4);
    const BlockId wh = p.kernels[0].workerHeader;
    const Addr wh_pc = p.blocks[wh].pc;
    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};
    SimConfig sc;

    SimMetrics warm = MulticoreSim(p, cfg, sc)
                          .runRegion(wh_pc, 1024, wh_pc, 1536, true);
    SimMetrics cold = MulticoreSim(p, cfg, sc)
                          .runRegion(wh_pc, 1024, wh_pc, 1536, false);
    EXPECT_LT(warm.l2Misses, cold.l2Misses);
}

TEST(MulticoreSim, RegionOnUnknownPcIsFatal)
{
    Program p = tinyProgram();
    ExecConfig cfg{.numThreads = 2, .waitPolicy = WaitPolicy::Passive};
    MulticoreSim sim(p, cfg, SimConfig{});
    EXPECT_THROW(sim.runRegion(0xdeadbeef, 1, 0, 0), FatalError);
}

TEST(Hierarchy, PrefetcherReducesStreamingMisses)
{
    // Sequential-stream accesses: a next-line prefetcher converts most
    // L2 demand misses into hits.
    SimConfig base;
    SimConfig pf = base;
    pf.prefetchDegree = 2;
    CacheHierarchy h_base(base, 1);
    CacheHierarchy h_pf(pf, 1);
    for (Addr a = 0; a < (4u << 20); a += 64) {
        h_base.access(0, 0x10000000 + a, false);
        h_pf.access(0, 0x10000000 + a, false);
    }
    EXPECT_GT(h_pf.prefetchesIssued(), 0u);
    EXPECT_LT(h_pf.l2Stats(0).misses, h_base.l2Stats(0).misses / 2);
}

TEST(MulticoreSim, PrefetchConfigChangesTiming)
{
    // A streaming workload runs faster with the prefetcher on.
    ProgramBuilder b("stream", 47);
    uint32_t k = b.beginKernel("stream", SchedPolicy::StaticFor, 512);
    b.addStream({.footprintBytes = 32u << 20, .strideBytes = 64,
                 .shared = true});
    b.addBlock({.numInstrs = 32, .fracMem = 0.5, .streams = {0}});
    b.endKernel();
    b.runKernels({k}, 2);
    Program p = b.build();

    ExecConfig cfg{.numThreads = 2, .waitPolicy = WaitPolicy::Passive};
    SimConfig off;
    SimConfig on;
    on.prefetchDegree = 4;
    SimMetrics m_off = MulticoreSim(p, cfg, off).run();
    SimMetrics m_on = MulticoreSim(p, cfg, on).run();
    EXPECT_LT(m_on.cycles, m_off.cycles);
    EXPECT_LT(m_on.l2Misses, m_off.l2Misses);
}

TEST(MulticoreSim, SnapshotResumesIdentically)
{
    // Deep-copying a MulticoreSim mid-run and finishing both must
    // produce identical results (checkpoint-driven simulation).
    Program p = tinyProgram(256, 3);
    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};
    SimConfig sc;
    MulticoreSim sim(p, cfg, sc);
    sim.fastForward(
        [&] { return sim.engine().globalIcount() > 50'000; }, true);

    MulticoreSim snap(sim);
    SimMetrics a = sim.runDetailed();
    SimMetrics b = snap.runDetailed();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
}

TEST(SimConfig, DescribeMentionsTableOneParts)
{
    SimConfig cfg;
    std::string desc = cfg.describe();
    EXPECT_NE(desc.find("ROB"), std::string::npos);
    EXPECT_NE(desc.find("L3"), std::string::npos);
    EXPECT_NE(desc.find("2.66"), std::string::npos);
}

TEST(SimMetrics, DerivedRatesAndAccumulation)
{
    SimMetrics m;
    m.cycles = 1000;
    m.instructions = 2000;
    m.branchMispredicts = 10;
    m.l2Misses = 4;
    EXPECT_DOUBLE_EQ(m.ipc(), 2.0);
    EXPECT_DOUBLE_EQ(m.branchMpki(), 5.0);
    EXPECT_DOUBLE_EQ(m.l2Mpki(), 2.0);

    SimMetrics sum;
    sum += m;
    sum += m;
    EXPECT_EQ(sum.cycles, 2000u);
    EXPECT_EQ(sum.instructions, 4000u);
}

} // namespace
} // namespace looppoint
