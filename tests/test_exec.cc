/**
 * @file
 * Tests for the execution engine and round-robin driver: determinism,
 * wait-policy behavior, the (PC, count) marker invariance LoopPoint
 * depends on, scheduling policies, and synchronization correctness.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "exec/driver.hh"
#include "exec/engine.hh"
#include "isa/program_builder.hh"
#include "util/logging.hh"

namespace looppoint {
namespace {

/** Collects executed block ids, optionally main-image only. */
class StreamCollector : public ExecListener
{
  public:
    StreamCollector(uint32_t num_threads, bool main_only)
        : streams(num_threads), mainOnly(main_only)
    {}

    void
    onBlock(uint32_t tid, BlockId block,
            const ExecutionEngine &engine) override
    {
        if (!mainOnly || engine.program().inMainImage(block))
            streams[tid].push_back(block);
    }

    std::vector<std::vector<BlockId>> streams;
    bool mainOnly;
};

Program
makeProgram(bool with_critical, bool dynamic_sched, uint64_t iters = 64,
            uint64_t timesteps = 4)
{
    ProgramBuilder b("exec-test", 7);
    uint32_t k = b.beginKernel(
        "work", dynamic_sched ? SchedPolicy::DynamicFor
                              : SchedPolicy::StaticFor,
        iters, 4);
    b.addStream({.footprintBytes = 1 << 18, .strideBytes = 8});
    b.addBlock({.numInstrs = 24, .fracMem = 0.4, .streams = {0}});
    b.addCond({.numInstrs = 6, .streams = {}},
              {.numInstrs = 14, .streams = {0}},
              {.numInstrs = 10, .streams = {0}},
              {.numInstrs = 4, .streams = {}}, 0.4);
    if (with_critical)
        b.addCritical(0, {.numInstrs = 12, .streams = {0}});
    b.endKernel();
    b.runKernels({k}, timesteps);
    return b.build();
}

uint64_t
runToEnd(const Program &p, ExecConfig cfg, ExecListener *l = nullptr,
         uint64_t quantum = 500)
{
    ExecutionEngine e(p, cfg);
    RoundRobinDriver d(e, quantum);
    d.run(l);
    EXPECT_TRUE(e.allFinished());
    return e.globalIcount();
}

TEST(ExecEngine, RunsToCompletion)
{
    Program p = makeProgram(false, false);
    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};
    uint64_t icount = runToEnd(p, cfg);
    EXPECT_GT(icount, 1000u);
}

TEST(ExecEngine, DeterministicAcrossRuns)
{
    Program p = makeProgram(true, false);
    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};
    StreamCollector c1(4, false), c2(4, false);
    uint64_t i1 = runToEnd(p, cfg, &c1);
    uint64_t i2 = runToEnd(p, cfg, &c2);
    EXPECT_EQ(i1, i2);
    EXPECT_EQ(c1.streams, c2.streams);
}

TEST(ExecEngine, WorkerHeaderCountEqualsIterations)
{
    // The fundamental LoopPoint marker property: the global execution
    // count of a main-image loop entry equals the work done and is
    // independent of scheduling, threads, and wait policy.
    Program p = makeProgram(false, false, 64, 4);
    const BlockId wh = p.kernels[0].workerHeader;
    const uint64_t expect = 64 * 4;

    for (uint32_t threads : {1u, 2u, 4u, 8u}) {
        for (auto policy : {WaitPolicy::Passive, WaitPolicy::Active}) {
            ExecConfig cfg{.numThreads = threads, .waitPolicy = policy};
            ExecutionEngine e(p, cfg);
            RoundRobinDriver d(e, 333);
            d.run();
            EXPECT_EQ(e.blockExecCount(wh), expect)
                << "threads=" << threads << " active="
                << (policy == WaitPolicy::Active);
        }
    }
}

TEST(ExecEngine, DynamicSchedCoversAllIterationsOnce)
{
    Program p = makeProgram(false, true, 100, 3);
    const BlockId wh = p.kernels[0].workerHeader;
    ExecConfig cfg{.numThreads = 5, .waitPolicy = WaitPolicy::Passive};
    ExecutionEngine e(p, cfg);
    RoundRobinDriver d(e, 100);
    d.run();
    EXPECT_EQ(e.blockExecCount(wh), 100u * 3u);
}

TEST(ExecEngine, ActivePolicyEmitsSpin)
{
    // With imbalance, early-finishing threads spin under the active
    // policy and block under the passive policy.
    ProgramBuilder b("imb", 3);
    uint32_t k = b.beginKernel("work", SchedPolicy::StaticFor, 200);
    b.setImbalance(1.5);
    b.addBlock({.numInstrs = 40, .fracMem = 0.3, .streams = {}});
    b.endKernel();
    b.runKernels({k}, 2);
    Program p = b.build();

    ExecConfig active{.numThreads = 4, .waitPolicy = WaitPolicy::Active};
    ExecutionEngine ea(p, active);
    RoundRobinDriver da(ea, 200);
    da.run();
    EXPECT_GT(ea.blockExecCount(p.runtime.spinWait), 0u);
    EXPECT_EQ(ea.blockExecCount(p.runtime.futexWait), 0u);

    ExecConfig passive{.numThreads = 4,
                       .waitPolicy = WaitPolicy::Passive};
    ExecutionEngine ep(p, passive);
    RoundRobinDriver dp(ep, 200);
    dp.run();
    EXPECT_EQ(ep.blockExecCount(p.runtime.spinWait), 0u);
    EXPECT_GT(ep.blockExecCount(p.runtime.futexWait), 0u);

    // Filtered (main-image) work is identical despite the very
    // different library activity.
    EXPECT_EQ(ea.globalFilteredIcount(), ep.globalFilteredIcount());
    EXPECT_GT(ea.globalIcount(), ep.globalIcount());
}

TEST(ExecEngine, FilteredIcountExcludesLibraryCode)
{
    Program p = makeProgram(true, true);
    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Active};
    ExecutionEngine e(p, cfg);
    RoundRobinDriver d(e, 100);
    d.run();
    EXPECT_LT(e.globalFilteredIcount(), e.globalIcount());
}

TEST(ExecEngine, StaticImbalanceSkewsWork)
{
    ProgramBuilder b("imb2", 11);
    uint32_t k = b.beginKernel("work", SchedPolicy::StaticFor, 400);
    b.setImbalance(1.0);
    b.addBlock({.numInstrs = 30, .fracMem = 0.2, .streams = {}});
    b.endKernel();
    b.runKernels({k}, 1);
    Program p = b.build();

    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};
    ExecutionEngine e(p, cfg);
    RoundRobinDriver d(e, 100);
    d.run();
    // Thread 0 gets the biggest share, thread 3 the smallest.
    EXPECT_GT(e.filteredIcount(0), e.filteredIcount(3) * 2);
}

TEST(ExecEngine, SerialKernelRunsOnThreadZeroOnly)
{
    ProgramBuilder b("serial", 13);
    uint32_t k = b.beginKernel("init", SchedPolicy::Serial, 50);
    b.addBlock({.numInstrs = 20, .fracMem = 0.2, .streams = {}});
    b.endKernel();
    b.runKernels({k}, 1);
    Program p = b.build();

    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};
    StreamCollector c(4, true);
    runToEnd(p, cfg, &c);
    const BlockId wh = p.kernels[0].workerHeader;
    size_t wh_on_t0 = 0;
    for (BlockId blk : c.streams[0])
        wh_on_t0 += (blk == wh);
    EXPECT_EQ(wh_on_t0, 50u);
    for (uint32_t t = 1; t < 4; ++t)
        for (BlockId blk : c.streams[t])
            EXPECT_NE(blk, wh);
}

TEST(ExecEngine, CriticalSectionsAreExclusiveAndComplete)
{
    Program p = makeProgram(true, false, 80, 2);
    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};
    ExecutionEngine e(p, cfg);
    RoundRobinDriver d(e, 50);
    d.run();
    // One critical section per worker iteration.
    const auto &item = p.kernels[0].body.back();
    ASSERT_EQ(item.kind, BodyItem::Kind::Critical);
    EXPECT_EQ(e.blockExecCount(item.blocks[1]), 80u * 2u);
    EXPECT_EQ(e.blockExecCount(p.runtime.lockAcquire), 80u * 2u);
    EXPECT_EQ(e.blockExecCount(p.runtime.lockRelease), 80u * 2u);
}

TEST(ExecEngine, NestedCriticalSectionsExecuteChildrenUnderLock)
{
    // A critical section built with beginCritical/endCritical executes
    // its child items while the outer lock is held; nested criticals
    // acquire and release in LIFO order.
    ProgramBuilder b("nested-crit", 11);
    uint32_t k = b.beginKernel("work", SchedPolicy::DynamicFor, 40, 2);
    b.addStream({.footprintBytes = 1 << 16, .strideBytes = 8});
    b.beginCritical(0, {.numInstrs = 8, .streams = {0}});
    b.addBlock({.numInstrs = 6, .streams = {0}});
    b.beginCritical(1, {.numInstrs = 5, .streams = {0}});
    b.endCritical();
    b.endCritical();
    b.endKernel();
    b.runKernels({k}, 2);
    Program p = b.build();

    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};
    ExecutionEngine e(p, cfg);
    RoundRobinDriver d(e, 50);
    d.run();
    EXPECT_TRUE(e.allFinished());

    const auto &outer = p.kernels[0].body.back();
    ASSERT_EQ(outer.kind, BodyItem::Kind::Critical);
    ASSERT_EQ(outer.children.size(), 2u);
    const auto &inner = outer.children.back();
    ASSERT_EQ(inner.kind, BodyItem::Kind::Critical);
    // Every iteration runs outer CS, child block, and inner CS once.
    EXPECT_EQ(e.blockExecCount(outer.blocks[1]), 80u);
    EXPECT_EQ(e.blockExecCount(outer.children[0].blocks[0]), 80u);
    EXPECT_EQ(e.blockExecCount(inner.blocks[1]), 80u);
    // Two acquire/release pairs per iteration.
    EXPECT_EQ(e.blockExecCount(p.runtime.lockAcquire), 160u);
    EXPECT_EQ(e.blockExecCount(p.runtime.lockRelease), 160u);
}

TEST(ExecEngine, NestedCriticalStateRoundTripsThroughSaveLoad)
{
    // Stop mid-run with critical-section child frames live on thread
    // stacks, serialize, reload, and check the continuation is
    // bit-identical (the frame path must name Critical items).
    ProgramBuilder b("nested-crit-io", 5);
    uint32_t k = b.beginKernel("work", SchedPolicy::DynamicFor, 24, 1);
    b.addStream({.footprintBytes = 1 << 16, .strideBytes = 8});
    b.beginCritical(0, {.numInstrs = 4, .streams = {0}});
    b.beginInnerLoop(30);
    b.addBlock({.numInstrs = 10, .streams = {0}});
    b.endInnerLoop();
    b.endCritical();
    b.endKernel();
    b.runKernels({k}, 2);
    Program p = b.build();

    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};
    ExecutionEngine e(p, cfg);
    RoundRobinDriver d(e, 25);
    d.run(nullptr, [&] { return e.globalIcount() > 2000; });
    ASSERT_FALSE(e.allFinished());

    std::ostringstream os;
    e.save(os);
    std::istringstream is(os.str());
    ExecutionEngine e2 = ExecutionEngine::load(is, p, nullptr);

    StreamCollector c1(4, false), c2(4, false);
    RoundRobinDriver d1(e, 25);
    d1.run(&c1);
    RoundRobinDriver d2(e2, 25);
    d2.run(&c2);
    EXPECT_TRUE(e.allFinished());
    EXPECT_TRUE(e2.allFinished());
    EXPECT_EQ(c1.streams, c2.streams);
    EXPECT_EQ(e.globalIcount(), e2.globalIcount());
}

TEST(ExecEngine, MemRefsGeneratedWhenEnabled)
{
    Program p = makeProgram(false, false, 16, 1);
    ExecConfig cfg{.numThreads = 2,
                   .waitPolicy = WaitPolicy::Passive,
                   .genAddresses = true};
    ExecutionEngine e(p, cfg);
    uint64_t refs = 0;
    while (!e.allFinished()) {
        for (uint32_t t = 0; t < 2; ++t) {
            if (!e.runnable(t))
                continue;
            StepResult r = e.step(t);
            if (r.kind == StepResult::Kind::Block) {
                const auto &m = e.memRefs(t);
                refs += m.size();
                size_t mem_instrs = 0;
                for (const auto &ins : e.program().block(r.block).instrs)
                    mem_instrs += isMemOp(ins.op);
                EXPECT_EQ(m.size(), mem_instrs);
            }
        }
    }
    EXPECT_GT(refs, 0u);
}

TEST(ExecEngine, SharedStreamAddressesTiedToIteration)
{
    // The same iteration touches the same shared addresses regardless
    // of thread count (iteration-tied data accesses).
    Program p = makeProgram(false, false, 32, 1);
    auto collect = [&](uint32_t threads) {
        ExecConfig cfg{.numThreads = threads,
                       .waitPolicy = WaitPolicy::Passive,
                       .genAddresses = true};
        ExecutionEngine e(p, cfg);
        std::vector<Addr> shared;
        while (!e.allFinished()) {
            for (uint32_t t = 0; t < threads; ++t) {
                if (!e.runnable(t))
                    continue;
                StepResult r = e.step(t);
                if (r.kind != StepResult::Kind::Block)
                    continue;
                for (const auto &m : e.memRefs(t))
                    if (m.addr >= (0x800ull << 36))
                        shared.push_back(m.addr);
            }
        }
        std::sort(shared.begin(), shared.end());
        return shared;
    };
    auto a1 = collect(1);
    auto a4 = collect(4);
    EXPECT_EQ(a1, a4);
}

TEST(ExecEngine, BlockedThreadsReportNotRunnable)
{
    Program p = makeProgram(false, false, 8, 1);
    ExecConfig cfg{.numThreads = 8, .waitPolicy = WaitPolicy::Passive};
    ExecutionEngine e(p, cfg);
    // Run only thread 1 until it can no longer proceed.
    int guard = 100000;
    while (e.runnable(1) && guard-- > 0) {
        StepResult r = e.step(1);
        if (r.kind != StepResult::Kind::Block)
            break;
    }
    // Thread 1 must eventually block at the barrier (thread 0 never
    // ran, so the barrier cannot release).
    EXPECT_FALSE(e.runnable(1));
    EXPECT_FALSE(e.finished(1));
    EXPECT_TRUE(e.runnable(0));
}

TEST(ExecEngine, IcountMonotonicAndConsistent)
{
    Program p = makeProgram(true, true, 40, 2);
    ExecConfig cfg{.numThreads = 3, .waitPolicy = WaitPolicy::Active};
    ExecutionEngine e(p, cfg);
    RoundRobinDriver d(e, 64);
    uint64_t total = 0;
    d.run();
    for (uint32_t t = 0; t < 3; ++t) {
        EXPECT_GE(e.icount(t), e.filteredIcount(t));
        total += e.icount(t);
    }
    EXPECT_EQ(total, e.globalIcount());
}

TEST(Driver, FatalOnZeroQuantum)
{
    Program p = makeProgram(false, false, 4, 1);
    ExecConfig cfg{.numThreads = 1};
    ExecutionEngine e(p, cfg);
    EXPECT_THROW(RoundRobinDriver(e, 0), FatalError);
}

TEST(Driver, StopConditionHonored)
{
    Program p = makeProgram(false, false, 1000, 4);
    ExecConfig cfg{.numThreads = 2, .waitPolicy = WaitPolicy::Passive};
    ExecutionEngine e(p, cfg);
    RoundRobinDriver d(e, 100);
    d.run(nullptr, [&] { return e.globalIcount() > 5000; });
    EXPECT_FALSE(e.allFinished());
    EXPECT_GT(e.globalIcount(), 5000u);
    // Can resume afterwards.
    d.run();
    EXPECT_TRUE(e.allFinished());
}

TEST(ExecEngine, CheckpointCopyResumesIdentically)
{
    Program p = makeProgram(true, false, 64, 3);
    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};

    ExecutionEngine e(p, cfg);
    RoundRobinDriver d(e, 100);
    d.run(nullptr, [&] { return e.globalIcount() > 3000; });

    ExecutionEngine snapshot(e); // checkpoint

    StreamCollector c1(4, true);
    RoundRobinDriver d1(e, 100);
    d1.run(&c1);

    StreamCollector c2(4, true);
    RoundRobinDriver d2(snapshot, 100);
    d2.run(&c2);

    EXPECT_EQ(c1.streams, c2.streams);
    EXPECT_EQ(e.globalIcount(), snapshot.globalIcount());
}

} // namespace
} // namespace looppoint
