/**
 * @file
 * Tests for the workload suites: every app generates a valid program,
 * work scales with input class, Table III flags match the generated
 * structure, and the special-case apps (xz) have their documented
 * shapes.
 */

#include <gtest/gtest.h>

#include "exec/driver.hh"
#include "exec/engine.hh"
#include "util/logging.hh"
#include "workload/descriptor.hh"

namespace looppoint {
namespace {

TEST(Workload, SuiteSizesMatchPaper)
{
    EXPECT_EQ(spec2017Apps().size(), 14u); // Fig. 5 x-axis
    EXPECT_EQ(npbApps().size(), 9u);       // NPB minus dc
}

TEST(Workload, AllAppsGenerateValidPrograms)
{
    for (const auto &app : spec2017Apps()) {
        Program p = generateProgram(app, InputClass::Train);
        p.validate();
        EXPECT_FALSE(p.kernels.empty()) << app.name;
    }
    for (const auto &app : npbApps()) {
        Program p = generateProgram(app, InputClass::NpbC);
        p.validate();
    }
    generateProgram(demoMatrixApp(), InputClass::Test).validate();
}

TEST(Workload, TrainWorkInReasonableRange)
{
    for (const auto &app : spec2017Apps()) {
        Program p = generateProgram(app, InputClass::Train);
        uint64_t work = p.estimateWorkInstrs(8);
        EXPECT_GT(work, 2'000'000u) << app.name;
        EXPECT_LT(work, 120'000'000u) << app.name;
    }
}

TEST(Workload, NpbClassCWorkInReasonableRange)
{
    for (const auto &app : npbApps()) {
        Program p = generateProgram(app, InputClass::NpbC);
        uint64_t work = p.estimateWorkInstrs(8);
        EXPECT_GT(work, 2'000'000u) << app.name;
        EXPECT_LT(work, 120'000'000u) << app.name;
    }
}

TEST(Workload, InputClassesScaleWork)
{
    const auto &app = findApp("603.bwaves_s.1");
    uint64_t test_w =
        generateProgram(app, InputClass::Test).estimateWorkInstrs(8);
    uint64_t train_w =
        generateProgram(app, InputClass::Train).estimateWorkInstrs(8);
    uint64_t ref_w =
        generateProgram(app, InputClass::Ref).estimateWorkInstrs(8);
    EXPECT_LT(test_w, train_w);
    EXPECT_LT(train_w * 20, ref_w); // ref is a much larger run
}

TEST(Workload, DeclaredSyncMatchesGeneratedStructure)
{
    for (const auto &app : spec2017Apps()) {
        Program p = generateProgram(app, InputClass::Test);
        SyncUse declared = app.declaredSync();
        SyncUse built;
        for (const auto &k : p.kernels) {
            built.staticFor |= k.sync.staticFor;
            built.dynamicFor |= k.sync.dynamicFor;
            built.barrier |= k.sync.barrier;
            built.atomic |= k.sync.atomic;
            built.lock |= k.sync.lock;
            built.reduction |= k.sync.reduction;
            built.master |= k.sync.master;
            built.single |= k.sync.single;
        }
        EXPECT_EQ(declared.staticFor, built.staticFor) << app.name;
        EXPECT_EQ(declared.dynamicFor, built.dynamicFor) << app.name;
        EXPECT_EQ(declared.atomic, built.atomic) << app.name;
        EXPECT_EQ(declared.lock, built.lock) << app.name;
        EXPECT_EQ(declared.reduction, built.reduction) << app.name;
        EXPECT_EQ(declared.master, built.master) << app.name;
        EXPECT_EQ(declared.single, built.single) << app.name;
    }
}

TEST(Workload, XzThreadOverrides)
{
    EXPECT_EQ(findApp("657.xz_s.1").effectiveThreads(8), 1u);
    EXPECT_EQ(findApp("657.xz_s.2").effectiveThreads(8), 4u);
    EXPECT_EQ(findApp("603.bwaves_s.1").effectiveThreads(8), 8u);
    EXPECT_EQ(findApp("603.bwaves_s.1").effectiveThreads(16), 16u);
}

TEST(Workload, XzS2IsBarrierPoor)
{
    // One timestep -> very few kernel instances -> very few barriers,
    // matching the paper's "xz has no (useful) barriers".
    const auto &xz = findApp("657.xz_s.2");
    Program p = generateProgram(xz, InputClass::Train);
    EXPECT_LE(p.runList.size(), 4u);

    const auto &pop2 = findApp("628.pop2_s.1");
    Program pp = generateProgram(pop2, InputClass::Train);
    EXPECT_GT(pp.runList.size(), 100u); // barrier-rich
}

TEST(Workload, PthreadSuiteGeneratesValidPrograms)
{
    EXPECT_EQ(pthreadApps().size(), 3u);
    for (const auto &app : pthreadApps()) {
        Program p = generateProgram(app, InputClass::Train);
        p.validate();
        EXPECT_EQ(app.suite, Suite::PthreadLike);
        uint64_t work = p.estimateWorkInstrs(8);
        EXPECT_GT(work, 1'000'000u) << app.name;
        EXPECT_LT(work, 120'000'000u) << app.name;
        // Lock/atomic-centric, as advertised.
        SyncUse u = app.declaredSync();
        EXPECT_TRUE(u.lock || u.atomic) << app.name;
    }
    EXPECT_EQ(findApp("pt-pipeline").name, "pt-pipeline");
}

TEST(Workload, FindAppThrowsOnUnknown)
{
    EXPECT_THROW(findApp("no-such-app"), FatalError);
}

TEST(Workload, DemoAppRunsQuickly)
{
    Program p = generateProgram(demoMatrixApp(), InputClass::Test);
    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};
    ExecutionEngine e(p, cfg);
    RoundRobinDriver d(e, 200);
    d.run();
    EXPECT_TRUE(e.allFinished());
    EXPECT_GT(e.globalFilteredIcount(), 10'000u);
}

TEST(Workload, XzS2ExecutionIsHeterogeneous)
{
    // Fig. 3 ground truth: per-thread shares differ strongly.
    const auto &xz = findApp("657.xz_s.2");
    Program p = generateProgram(xz, InputClass::Test);
    uint32_t threads = xz.effectiveThreads(8);
    ExecConfig cfg{.numThreads = threads,
                   .waitPolicy = WaitPolicy::Passive};
    ExecutionEngine e(p, cfg);
    RoundRobinDriver d(e, 500);
    d.run();
    uint64_t t0 = e.filteredIcount(0);
    uint64_t t_last = e.filteredIcount(threads - 1);
    EXPECT_GT(t0, t_last); // skewed toward thread 0
}

TEST(Workload, InputClassNames)
{
    EXPECT_EQ(inputClassName(InputClass::Train), "train");
    EXPECT_EQ(inputClassName(InputClass::Ref), "ref");
    EXPECT_EQ(inputClassName(InputClass::NpbC), "C");
}

} // namespace
} // namespace looppoint
