/**
 * @file
 * Tests for the guest-program analyses: ProgramLint (one seeded defect
 * per lint defect class, asserting the exact diagnostic), the
 * happens-before RaceDetector (an injected guest race it must flag, a
 * negative control, and zero false positives over every bundled
 * workload suite), the Eraser-style lockset and lock-order deadlock
 * passes (each catching an injected defect the happens-before checker
 * provably misses), the analysis registry, the SARIF and baseline
 * emitters, and the pipeline wiring.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "analysis/baseline.hh"
#include "analysis/lockset.hh"
#include "analysis/program_lint.hh"
#include "analysis/race_detector.hh"
#include "analysis/registry.hh"
#include "analysis/sarif.hh"
#include "core/looppoint.hh"
#include "dcfg/dcfg.hh"
#include "isa/addr_space.hh"
#include "isa/program_builder.hh"
#include "obs/json.hh"
#include "pinball/pinball.hh"
#include "util/logging.hh"
#include "workload/descriptor.hh"

namespace looppoint {
namespace {

bool
hasDiag(const std::vector<Diagnostic> &diags, Severity sev,
        const std::string &pass, const std::string &substr)
{
    return std::any_of(
        diags.begin(), diags.end(), [&](const Diagnostic &d) {
            return d.severity == sev && d.pass == pass &&
                   d.message.find(substr) != std::string::npos;
        });
}

size_t
countSeverity(const std::vector<Diagnostic> &diags, Severity sev)
{
    size_t n = 0;
    for (const auto &d : diags)
        if (d.severity == sev)
            ++n;
    return n;
}

/** A small well-formed program exercising locks and dynamic-for. */
Program
makeValidProgram()
{
    ProgramBuilder b("lint-valid", 7);
    uint32_t k0 = b.beginKernel("dyn", SchedPolicy::DynamicFor, 64, 4);
    b.addStream({.footprintBytes = 1 << 16, .strideBytes = 8});
    b.addBlock({.numInstrs = 24, .fracMem = 0.3, .streams = {0}});
    b.addCritical(0, {.numInstrs = 10, .streams = {0}});
    b.endKernel();
    uint32_t k1 = b.beginKernel("stat", SchedPolicy::StaticFor, 48);
    b.addStream({.footprintBytes = 1 << 14, .strideBytes = 8});
    b.beginInnerLoop(4);
    b.addBlock({.numInstrs = 16, .fracMem = 0.4, .streams = {0}});
    b.endInnerLoop();
    b.endKernel();
    b.runKernels({k0, k1}, 2);
    return b.build();
}

std::vector<Diagnostic>
lintOnly(const Program &prog, const std::string &pass,
         const Dcfg *dcfg = nullptr, const Pinball *pinball = nullptr)
{
    LintContext ctx;
    ctx.prog = &prog;
    ctx.dcfg = dcfg;
    ctx.pinball = pinball;
    DiagnosticSink sink;
    ProgramLint().run(ctx, sink, {pass});
    return sink.take();
}

TEST(ProgramLint, CleanProgramHasNoFindings)
{
    Program p = makeValidProgram();
    LintContext ctx;
    ctx.prog = &p;
    DiagnosticSink sink;
    size_t errors = ProgramLint().run(ctx, sink);
    EXPECT_EQ(errors, 0u);
    for (const auto &d : sink.diagnostics())
        EXPECT_NE(d.severity, Severity::Error) << d.message;
}

TEST(ProgramLint, PassNamesAreExposedInRunOrder)
{
    std::vector<std::string> names = lintPassNames();
    ASSERT_EQ(names.size(), 7u);
    EXPECT_EQ(names.front(), "structure");
    EXPECT_EQ(names.back(), "marker-stability");
}

TEST(ProgramLint, StructureCatchesNonDenseBlockIds)
{
    Program p = makeValidProgram();
    p.blocks[1].id = 5;
    auto diags = lintOnly(p, "structure");
    EXPECT_TRUE(hasDiag(diags, Severity::Error, "structure",
                        "non-dense BlockId"));
}

TEST(ProgramLint, StructureCatchesDanglingKernelReference)
{
    Program p = makeValidProgram();
    p.kernels[0].workerHeader = 9999;
    auto diags = lintOnly(p, "structure");
    EXPECT_TRUE(hasDiag(diags, Severity::Error, "structure",
                        "out-of-range block"));
}

TEST(ProgramLint, StructuralErrorsGateLaterPasses)
{
    Program p = makeValidProgram();
    p.blocks[1].id = 5;
    LintContext ctx;
    ctx.prog = &p;
    DiagnosticSink sink;
    ProgramLint().run(ctx, sink);
    auto diags = sink.take();
    EXPECT_TRUE(hasDiag(diags, Severity::Info, "lint",
                        "remaining passes skipped"));
    for (const auto &d : diags)
        EXPECT_TRUE(d.pass == "structure" || d.pass == "lint")
            << d.pass;
}

TEST(ProgramLint, ReachabilityCatchesOrphanBlock)
{
    Program p = makeValidProgram();
    BasicBlock orphan;
    orphan.id = static_cast<BlockId>(p.blocks.size());
    orphan.pc = 0xdead000;
    orphan.image = ImageId::Main;
    orphan.routine = 0;
    orphan.instrs.push_back({});
    p.blocks.push_back(orphan);
    p.finalizeDerived();
    auto diags = lintOnly(p, "reachability");
    EXPECT_TRUE(hasDiag(diags, Severity::Warning, "reachability",
                        "unreachable"));
    EXPECT_TRUE(hasDiag(diags, Severity::Warning, "reachability",
                        "missing from its routine"));
}

TEST(ProgramLint, StreamsCatchesBaseEscapingItsSlot)
{
    Program p = makeValidProgram();
    p.kernels[0].plans[0].base += 64;
    auto diags = lintOnly(p, "streams");
    EXPECT_TRUE(hasDiag(diags, Severity::Error, "streams",
                        "escapes its address-space slot"));
}

TEST(ProgramLint, StreamsCatchesOverlappingRanges)
{
    Program p = makeValidProgram();
    // Park kernel 1's stream on kernel 0's slot: two kernels now
    // claim overlapping address ranges.
    p.kernels[1].plans[0].base = p.kernels[0].plans[0].base;
    auto diags = lintOnly(p, "streams");
    EXPECT_TRUE(hasDiag(diags, Severity::Error, "streams",
                        "overlaps"));
}

TEST(ProgramLint, StreamsCatchesFootprintBeyondItsBound)
{
    Program p = makeValidProgram();
    StreamPlan &plan = p.kernels[0].plans[0];
    ASSERT_FALSE(plan.shared);
    plan.footprint = kPrivPerThreadBytes + 64;
    plan.jumpBound = plan.footprint / plan.stride + 1;
    auto diags = lintOnly(p, "streams");
    EXPECT_TRUE(hasDiag(diags, Severity::Error, "streams",
                        "exceeds the per-thread private bound"));
}

TEST(ProgramLint, SyncCatchesUnpairedCriticalRelease)
{
    Program p = makeValidProgram();
    BodyItem *critical = nullptr;
    for (auto &item : p.kernels[0].body)
        if (item.kind == BodyItem::Kind::Critical)
            critical = &item;
    ASSERT_NE(critical, nullptr);
    critical->blocks[2] = critical->blocks[1]; // release -> CS block
    auto diags = lintOnly(p, "sync");
    EXPECT_TRUE(hasDiag(diags, Severity::Error, "sync",
                        "unpaired lock release"));
}

TEST(ProgramLint, SyncCatchesUnpairedBarrierStub)
{
    Program p = makeValidProgram();
    p.runtime.barrierEnter = kInvalidBlock;
    auto diags = lintOnly(p, "sync");
    EXPECT_TRUE(hasDiag(diags, Severity::Error, "sync",
                        "unpaired barrier stubs"));
}

TEST(ProgramLint, SyncWarnsOnDeclaredButUnusedFeatures)
{
    Program p = makeValidProgram();
    p.kernels[1].sync.lock = true; // declared, never used
    auto diags = lintOnly(p, "sync");
    EXPECT_TRUE(hasDiag(diags, Severity::Warning, "sync",
                        "declares critical sections"));
}

/** Main-image blocks of one routine, for handcrafted loop lists. */
std::vector<BlockId>
sameRoutineBlocks(const Program &p, size_t need)
{
    for (size_t r = 0; r < p.routines.size(); ++r) {
        std::vector<BlockId> out;
        for (size_t i = 0; i < p.blocks.size(); ++i)
            if (p.blocks[i].routine == r &&
                p.blocks[i].image == ImageId::Main)
                out.push_back(static_cast<BlockId>(i));
        if (out.size() >= need)
            return out;
    }
    return {};
}

TEST(ProgramLint, LoopsCatchesNonNaturalOverlap)
{
    Program p = makeValidProgram();
    std::vector<BlockId> bs = sameRoutineBlocks(p, 4);
    ASSERT_GE(bs.size(), 4u);
    const uint32_t routine = p.blocks[bs[0]].routine;
    DcfgLoop l1{bs[0], {bs[0], bs[1], bs[2]}, 3, 4, 1,
                ImageId::Main, routine};
    DcfgLoop l2{bs[1], {bs[1], bs[2], bs[3]}, 3, 4, 1,
                ImageId::Main, routine};
    DiagnosticSink sink;
    lintLoopList(p, {l1, l2}, sink);
    EXPECT_TRUE(hasDiag(sink.diagnostics(), Severity::Error, "loops",
                        "without nesting"));
}

TEST(ProgramLint, LoopsCatchesHeaderOutsideBody)
{
    Program p = makeValidProgram();
    std::vector<BlockId> bs = sameRoutineBlocks(p, 2);
    ASSERT_GE(bs.size(), 2u);
    DcfgLoop l{bs[0], {bs[1]}, 1, 2, 1, ImageId::Main,
               p.blocks[bs[0]].routine};
    DiagnosticSink sink;
    lintLoopList(p, {l}, sink);
    EXPECT_TRUE(hasDiag(sink.diagnostics(), Severity::Error, "loops",
                        "does not contain its header"));
}

TEST(ProgramLint, LoopsCatchesMalformedAccounting)
{
    Program p = makeValidProgram();
    std::vector<BlockId> bs = sameRoutineBlocks(p, 1);
    ASSERT_GE(bs.size(), 1u);
    // More back edges than header executions is impossible in a real
    // profile.
    DcfgLoop l{bs[0], {bs[0]}, 5, 3, 0, ImageId::Main,
               p.blocks[bs[0]].routine};
    DiagnosticSink sink;
    lintLoopList(p, {l}, sink);
    EXPECT_TRUE(hasDiag(sink.diagnostics(), Severity::Error, "loops",
                        "loop accounting is malformed"));
}

TEST(ProgramLint, NestedLoopsAreAccepted)
{
    Program p = makeValidProgram();
    std::vector<BlockId> bs = sameRoutineBlocks(p, 3);
    ASSERT_GE(bs.size(), 3u);
    const uint32_t routine = p.blocks[bs[0]].routine;
    DcfgLoop outer{bs[0], {bs[0], bs[1], bs[2]}, 2, 3, 1,
                   ImageId::Main, routine};
    DcfgLoop inner{bs[1], {bs[1], bs[2]}, 4, 5, 1, ImageId::Main,
                   routine};
    DiagnosticSink sink;
    lintLoopList(p, {outer, inner}, sink);
    EXPECT_EQ(countSeverity(sink.diagnostics(), Severity::Error), 0u);
}

TEST(ProgramLint, MarkersCatchesDuplicatePcs)
{
    Program p = makeValidProgram();
    p.blocks[2].pc = p.blocks[1].pc;
    auto diags = lintOnly(p, "markers");
    EXPECT_TRUE(hasDiag(diags, Severity::Error, "markers",
                        "shares pc"));
}

TEST(ProgramLint, MarkersCatchesMissingMainImageHeaders)
{
    Program p = makeValidProgram();
    // A DCFG with no edges discovers no loops, hence no legal markers.
    Dcfg empty(p, {}, {}, std::vector<uint64_t>(p.numBlocks(), 0));
    auto diags = lintOnly(p, "markers", &empty);
    EXPECT_TRUE(hasDiag(diags, Severity::Error, "markers",
                        "no main-image loop headers"));
}

TEST(ProgramLint, MarkerStabilityAcceptsRealRecording)
{
    Program p = makeValidProgram();
    ExecConfig cfg{.numThreads = 4};
    Pinball pb = recordPinball(p, cfg, 500);
    DcfgBuilder builder(p, cfg.numThreads);
    replayPinball(p, pb, 500, &builder);
    Dcfg dcfg = builder.build();
    auto diags = lintOnly(p, "marker-stability", &dcfg, &pb);
    EXPECT_EQ(countSeverity(diags, Severity::Error), 0u);
    EXPECT_TRUE(hasDiag(diags, Severity::Info, "marker-stability",
                        "stable across two constrained replays"));
}

TEST(ProgramLint, MarkerStabilityCatchesReplayDivergence)
{
    Program p = makeValidProgram();
    ExecConfig cfg{.numThreads = 4};
    Pinball pb = recordPinball(p, cfg, 500);
    DcfgBuilder builder(p, cfg.numThreads);
    replayPinball(p, pb, 500, &builder);
    Dcfg dcfg = builder.build();
    pb.threadFilteredIcounts[0] += 1; // corrupt the recording
    auto diags = lintOnly(p, "marker-stability", &dcfg, &pb);
    EXPECT_TRUE(hasDiag(diags, Severity::Error, "marker-stability",
                        "constrained replay diverged"));
}

TEST(ProgramLint, MarkerStabilityCatchesProfileCountMismatch)
{
    Program p = makeValidProgram();
    ExecConfig cfg{.numThreads = 4};
    Pinball pb = recordPinball(p, cfg, 500);
    DcfgBuilder builder(p, cfg.numThreads);
    replayPinball(p, pb, 500, &builder);
    Dcfg real = builder.build();
    std::vector<BlockId> headers = real.mainImageLoopHeaders();
    ASSERT_FALSE(headers.empty());
    std::vector<uint64_t> execs(p.numBlocks(), 0);
    for (size_t i = 0; i < p.numBlocks(); ++i)
        execs[i] = real.blockExecs(static_cast<BlockId>(i));
    execs[headers[0]] += 7; // profile no longer matches any replay
    Dcfg tampered(p, real.edges(), real.summaryEdges(), execs);
    auto diags = lintOnly(p, "marker-stability", &tampered, &pb);
    EXPECT_TRUE(hasDiag(diags, Severity::Error, "marker-stability",
                        "disagrees with the DCFG profile count"));
}

// --------------------------------------------------------------------
// RaceDetector
// --------------------------------------------------------------------

/**
 * The injected guest race: a dynamic-for kernel whose master prologue
 * stores to the shared stream without any ordering operation between
 * the prologue and the worker that claims iteration 0. With chunk size
 * 1 and a recording quantum smaller than the prologue, thread 0's
 * first turn expires before it can claim a chunk, so another thread
 * takes iteration 0 and touches the same shared-window positions the
 * prologue wrote — a textbook unsynchronized publish.
 */
Program
makeRacyProgram(bool shared_prologue)
{
    ProgramBuilder b(shared_prologue ? "racy" : "racy-control", 11);
    uint32_t k = b.beginKernel("pub", SchedPolicy::DynamicFor, 4, 1);
    b.addStream({.footprintBytes = 1 << 16,
                 .strideBytes = 8,
                 .shared = true});
    b.addStream({.footprintBytes = 1 << 12, .strideBytes = 8});
    b.setMasterPrologue({.numInstrs = 64,
                         .fracMem = 0.5,
                         .loadFrac = 0.0,
                         .streams = {shared_prologue
                                         ? uint8_t{0}
                                         : uint8_t{1}}},
                        /*is_single=*/false);
    b.addBlock({.numInstrs = 32, .fracMem = 0.5, .streams = {0}});
    b.endKernel();
    b.runKernels({k}, 1);
    return b.build();
}

TEST(RaceDetector, FlagsInjectedMasterPrologueRace)
{
    Program p = makeRacyProgram(/*shared_prologue=*/true);
    ExecConfig cfg{.numThreads = 4};
    Pinball pb = recordPinball(p, cfg, /*quantum=*/10);
    DiagnosticSink sink;
    RaceCheckStats st = checkGuestRaces(p, pb, sink);
    EXPECT_GT(st.races, 0u);
    EXPECT_TRUE(hasDiag(sink.diagnostics(), Severity::Error, "race",
                        "data race"));
    // Both sites must be cited.
    bool two_sites = false;
    for (const auto &d : sink.diagnostics())
        if (d.pass == "race" &&
            d.message.find("unordered with") != std::string::npos &&
            !d.location.empty())
            two_sites = true;
    EXPECT_TRUE(two_sites);
}

TEST(RaceDetector, PrivatePrologueControlIsClean)
{
    Program p = makeRacyProgram(/*shared_prologue=*/false);
    ExecConfig cfg{.numThreads = 4};
    Pinball pb = recordPinball(p, cfg, /*quantum=*/10);
    DiagnosticSink sink;
    RaceCheckStats st = checkGuestRaces(p, pb, sink);
    EXPECT_EQ(st.races, 0u);
    EXPECT_EQ(countSeverity(sink.diagnostics(), Severity::Error), 0u);
}

TEST(RaceDetector, ReportsAreDeduplicatedPerSitePair)
{
    Program p = makeRacyProgram(/*shared_prologue=*/true);
    ExecConfig cfg{.numThreads = 4};
    Pinball pb = recordPinball(p, cfg, /*quantum=*/10);
    DiagnosticSink sink;
    RaceCheckStats st = checkGuestRaces(p, pb, sink);
    // Each racing (prologue instr, body instr) site pair is reported
    // exactly once, and reports beyond the cap are only counted.
    EXPECT_GE(st.races, 1u);
    EXPECT_LE(st.races, 64u);
    const size_t reported =
        countSeverity(sink.diagnostics(), Severity::Error) +
        countSeverity(sink.diagnostics(), Severity::Warning);
    EXPECT_EQ(reported,
              std::min(st.races, RaceDetector::kMaxReports));
}

TEST(RaceDetector, CorruptPinballReportsDivergence)
{
    Program p = makeValidProgram();
    ExecConfig cfg{.numThreads = 4};
    Pinball pb = recordPinball(p, cfg, 500);
    pb.threadFilteredIcounts[1] += 3;
    DiagnosticSink sink;
    checkGuestRaces(p, pb, sink);
    EXPECT_TRUE(hasDiag(sink.diagnostics(), Severity::Error, "race",
                        "replay diverged"));
}

void
expectSuiteClean(const std::vector<AppDescriptor> &apps)
{
    for (const auto &app : apps) {
        Program p = generateProgram(app, InputClass::Test);
        ExecConfig cfg;
        cfg.numThreads = app.effectiveThreads(4);
        Pinball pb = recordPinball(p, cfg, 1000);
        DcfgBuilder builder(p, cfg.numThreads);
        replayPinball(p, pb, 1000, &builder);
        Dcfg dcfg = builder.build();

        DiagnosticSink sink;
        LintContext ctx;
        ctx.prog = &p;
        ctx.dcfg = &dcfg;
        ctx.pinball = &pb;
        ProgramLint().run(ctx, sink);
        RaceCheckStats st = checkGuestRaces(p, pb, sink);
        EXPECT_EQ(st.races, 0u) << app.name;
        LockDisciplineStats ld = checkGuestLockDiscipline(p, pb, sink);
        EXPECT_EQ(ld.locksetViolations, 0u) << app.name;
        EXPECT_EQ(ld.deadlockCycles, 0u) << app.name;
        EXPECT_EQ(countSeverity(sink.diagnostics(), Severity::Error),
                  0u)
            << app.name;
        EXPECT_EQ(countSeverity(sink.diagnostics(), Severity::Warning),
                  0u)
            << app.name;
    }
}

TEST(RaceDetector, Spec2017SuiteIsCleanUnderLintAndRaceCheck)
{
    expectSuiteClean(spec2017Apps());
}

TEST(RaceDetector, NpbSuiteIsCleanUnderLintAndRaceCheck)
{
    expectSuiteClean(npbApps());
}

TEST(RaceDetector, PthreadAndDemoAppsAreCleanUnderLintAndRaceCheck)
{
    std::vector<AppDescriptor> apps = pthreadApps();
    apps.push_back(demoMatrixApp());
    expectSuiteClean(apps);
}

// --------------------------------------------------------------------
// LockDisciplineDetector: lockset + deadlock
// --------------------------------------------------------------------

/**
 * The injected lockset defect: two barrier-separated kernels guard the
 * same shared data with *different* locks (phase-b's shared stream is
 * parked on phase-a's slot after build). The barrier between the
 * kernels orders every cross-kernel access pair, so the happens-before
 * RaceDetector stays provably silent — but no common lock guards the
 * data, which is exactly the discipline Eraser's lockset catches. With
 * `split` false both phases use lock 0 (the clean control).
 */
Program
makeSplitLockProgram(bool split)
{
    ProgramBuilder b(split ? "split-lock" : "split-lock-control", 13);
    uint32_t k0 = b.beginKernel("phase-a", SchedPolicy::DynamicFor, 32,
                                1);
    b.addStream({.footprintBytes = 1 << 14,
                 .strideBytes = 8,
                 .shared = true});
    b.addCritical(0, {.numInstrs = 16, .fracMem = 0.5, .streams = {0}});
    b.endKernel();
    uint32_t k1 = b.beginKernel("phase-b", SchedPolicy::StaticFor, 32);
    b.addStream({.footprintBytes = 1 << 14,
                 .strideBytes = 8,
                 .shared = true});
    b.addCritical(split ? 1 : 0,
                  {.numInstrs = 16, .fracMem = 0.5, .streams = {0}});
    b.endKernel();
    b.runKernels({k0, k1}, 1);
    Program p = b.build();
    // Same data, different guards: park phase-b's shared stream on
    // phase-a's address slot.
    p.kernels[1].plans[0].base = p.kernels[0].plans[0].base;
    return p;
}

TEST(LockDiscipline, FlagsInconsistentLocksTheRaceDetectorMisses)
{
    Program p = makeSplitLockProgram(/*split=*/true);
    ExecConfig cfg{.numThreads = 4};
    Pinball pb = recordPinball(p, cfg, /*quantum=*/10);

    DiagnosticSink sink;
    LockDisciplineStats st = checkGuestLockDiscipline(p, pb, sink);
    EXPECT_GT(st.guardedAccesses, 0u);
    EXPECT_GT(st.locksetViolations, 0u);
    auto diags = sink.take();
    EXPECT_TRUE(hasDiag(diags, Severity::Error, "lockset",
                        "inconsistent lock discipline") ||
                hasDiag(diags, Severity::Warning, "lockset",
                        "inconsistent lock discipline"));
    // Both sites and both locksets must be cited.
    bool full_report = false;
    for (const auto &d : diags)
        if (d.pass == "lockset" &&
            d.message.find("no common lock guards") !=
                std::string::npos &&
            d.message.find("lock 0") != std::string::npos &&
            d.message.find("lock 1") != std::string::npos &&
            !d.location.empty())
            full_report = true;
    EXPECT_TRUE(full_report);

    // The happens-before checker is silent on the very same recording:
    // the barrier orders the phases.
    DiagnosticSink hb;
    RaceCheckStats rc = checkGuestRaces(p, pb, hb);
    EXPECT_EQ(rc.races, 0u);
    EXPECT_EQ(countSeverity(hb.diagnostics(), Severity::Error), 0u);
}

TEST(LockDiscipline, ConsistentLockControlIsClean)
{
    Program p = makeSplitLockProgram(/*split=*/false);
    ExecConfig cfg{.numThreads = 4};
    Pinball pb = recordPinball(p, cfg, /*quantum=*/10);
    DiagnosticSink sink;
    LockDisciplineStats st = checkGuestLockDiscipline(p, pb, sink);
    EXPECT_GT(st.guardedAccesses, 0u);
    EXPECT_EQ(st.locksetViolations, 0u);
    EXPECT_EQ(countSeverity(sink.diagnostics(), Severity::Error), 0u);
    EXPECT_EQ(countSeverity(sink.diagnostics(), Severity::Warning), 0u);
}

/**
 * The injected deadlock potential: kernel 'fwd' nests lock 1 inside
 * lock 0, kernel 'rev' nests lock 0 inside lock 1. The two kernels are
 * barrier-separated, so the recorded run cannot deadlock (and the
 * happens-before checker sees nothing) — but a run interleaving the
 * two orders could. With `gated`, both nests sit inside gate lock 2,
 * which serializes them and must suppress the cycle.
 */
Program
makeAbbaProgram(bool gated)
{
    ProgramBuilder b(gated ? "abba-gated" : "abba", 17);
    auto nest = [&](uint32_t outer, uint32_t inner) {
        if (gated)
            b.beginCritical(2, {.numInstrs = 4, .streams = {0}});
        b.beginCritical(outer, {.numInstrs = 8, .streams = {0}});
        b.beginCritical(inner, {.numInstrs = 8, .streams = {0}});
        b.endCritical();
        b.endCritical();
        if (gated)
            b.endCritical();
    };
    uint32_t k0 = b.beginKernel("fwd", SchedPolicy::DynamicFor, 16, 1);
    b.addStream({.footprintBytes = 1 << 12, .strideBytes = 8});
    nest(0, 1);
    b.endKernel();
    uint32_t k1 = b.beginKernel("rev", SchedPolicy::DynamicFor, 16, 1);
    b.addStream({.footprintBytes = 1 << 12, .strideBytes = 8});
    nest(1, 0);
    b.endKernel();
    b.runKernels({k0, k1}, 1);
    return b.build();
}

TEST(LockDiscipline, FlagsAbbaCycleTheRaceDetectorMisses)
{
    Program p = makeAbbaProgram(/*gated=*/false);
    ExecConfig cfg{.numThreads = 4};
    Pinball pb = recordPinball(p, cfg, 1000);

    DiagnosticSink sink;
    LockDisciplineStats st = checkGuestLockDiscipline(p, pb, sink);
    EXPECT_EQ(st.deadlockCycles, 1u);
    EXPECT_EQ(st.gateSuppressedCycles, 0u);
    auto diags = sink.take();
    EXPECT_TRUE(hasDiag(diags, Severity::Error, "deadlock",
                        "potential deadlock"));
    // The report must carry both acquisition sites.
    bool both_sites = false;
    for (const auto &d : diags)
        if (d.pass == "deadlock" &&
            d.message.find("while holding lock 0") !=
                std::string::npos &&
            d.message.find("while holding lock 1") !=
                std::string::npos &&
            d.message.find("'fwd'") != std::string::npos &&
            d.message.find("'rev'") != std::string::npos)
            both_sites = true;
    EXPECT_TRUE(both_sites);

    // The recorded interleaving never deadlocks and carries no data
    // race, so the happens-before pass reports nothing.
    DiagnosticSink hb;
    RaceCheckStats rc = checkGuestRaces(p, pb, hb);
    EXPECT_EQ(rc.races, 0u);
    EXPECT_EQ(countSeverity(hb.diagnostics(), Severity::Error), 0u);
}

TEST(LockDiscipline, GateLockSuppressesSerializedCycle)
{
    Program p = makeAbbaProgram(/*gated=*/true);
    ExecConfig cfg{.numThreads = 4};
    Pinball pb = recordPinball(p, cfg, 1000);
    DiagnosticSink sink;
    LockDisciplineStats st = checkGuestLockDiscipline(p, pb, sink);
    EXPECT_EQ(st.deadlockCycles, 0u);
    EXPECT_EQ(st.gateSuppressedCycles, 1u);
    auto diags = sink.take();
    EXPECT_TRUE(hasDiag(diags, Severity::Info, "deadlock",
                        "serialized by gate"));
    EXPECT_EQ(countSeverity(diags, Severity::Error), 0u);
}

TEST(LockDiscipline, PassSelectionFiltersDiagnostics)
{
    Program p = makeAbbaProgram(/*gated=*/false);
    ExecConfig cfg{.numThreads = 4};
    Pinball pb = recordPinball(p, cfg, 1000);
    DiagnosticSink sink;
    checkGuestLockDiscipline(p, pb, sink, 1000, 32,
                             /*run_lockset=*/false,
                             /*run_deadlock=*/true);
    for (const auto &d : sink.diagnostics())
        EXPECT_EQ(d.pass, "deadlock") << d.message;
    EXPECT_TRUE(hasDiag(sink.diagnostics(), Severity::Error, "deadlock",
                        "potential deadlock"));
}

TEST(RaceDetector, MaxFindingsCapIsConfigurable)
{
    Program p = makeRacyProgram(/*shared_prologue=*/true);
    ExecConfig cfg{.numThreads = 4};
    Pinball pb = recordPinball(p, cfg, /*quantum=*/10);

    DiagnosticSink full;
    RaceCheckStats st_full = checkGuestRaces(p, pb, full);
    ASSERT_GT(st_full.races, 1u);

    DiagnosticSink capped;
    RaceCheckStats st = checkGuestRaces(p, pb, capped, 1000,
                                        /*max_findings=*/1);
    // The cap bounds *reports*, not detection: stats are unchanged.
    EXPECT_EQ(st.races, st_full.races);
    EXPECT_EQ(countSeverity(capped.diagnostics(), Severity::Error) +
                  countSeverity(capped.diagnostics(), Severity::Warning),
              1u);
    EXPECT_TRUE(hasDiag(capped.diagnostics(), Severity::Info, "race",
                        "further reports suppressed"));
}

// --------------------------------------------------------------------
// Diagnostics plumbing
// --------------------------------------------------------------------

TEST(Diagnostics, SinkCountsAndTakes)
{
    DiagnosticSink sink;
    sink.error("p1", "loc", "bad");
    sink.warning("p2", "", "odd");
    sink.info("p3", "", "fyi");
    EXPECT_EQ(sink.errors(), 1u);
    EXPECT_EQ(sink.warnings(), 1u);
    EXPECT_EQ(sink.count(Severity::Info), 1u);
    auto diags = sink.take();
    EXPECT_EQ(diags.size(), 3u);
    EXPECT_TRUE(sink.empty());
}

TEST(Diagnostics, TextEmitterFormat)
{
    std::vector<Diagnostic> diags{
        {Severity::Error, "streams", "kernel 'k0' stream 1",
         "footprint out of range"},
        {Severity::Info, "race", "", "0 races"},
    };
    std::ostringstream os;
    printDiagnosticsText(os, diags);
    EXPECT_EQ(os.str(),
              "error [streams] kernel 'k0' stream 1: footprint out "
              "of range\n"
              "info [race] 0 races\n");
}

TEST(Diagnostics, JsonEmitterEscapesSpecials)
{
    std::vector<Diagnostic> diags{
        {Severity::Warning, "sync", "a\"b\\c", "line1\nline2\t"},
    };
    std::ostringstream os;
    printDiagnosticsJson(os, diags);
    EXPECT_EQ(os.str(),
              "[\n  {\"severity\": \"warning\", \"pass\": \"sync\", "
              "\"location\": \"a\\\"b\\\\c\", "
              "\"message\": \"line1\\nline2\\t\"}\n]\n");
}

TEST(Diagnostics, JsonEmitterHandlesControlAndNonUtf8Bytes)
{
    std::vector<Diagnostic> diags{
        {Severity::Error, "audit", "", "raw \x01 bytes \x7f\xff here"},
        {Severity::Info, "lint", "empty-message", ""},
    };
    std::ostringstream os;
    printDiagnosticsJson(os, diags);
    const std::string out = os.str();
    // Control characters and non-UTF8 bytes escape to \u00XX, so the
    // output is valid JSON no matter what artifact bytes leaked into a
    // message.
    EXPECT_NE(out.find("raw \\u0001 bytes \\u007f\\u00ff here"),
              std::string::npos);
    EXPECT_NE(out.find("\"message\": \"\""), std::string::npos);
    std::string err;
    EXPECT_TRUE(parseJson(out, &err)) << err;
}

// --------------------------------------------------------------------
// Registry, SARIF, baselines
// --------------------------------------------------------------------

TEST(Registry, NamesExposeEveryAnalysis)
{
    std::vector<std::string> names = analysisNames();
    std::vector<std::string> lint = lintPassNames();
    ASSERT_EQ(names.size(), lint.size() + 4);
    for (size_t i = 0; i < lint.size(); ++i)
        EXPECT_EQ(names[i], lint[i]);
    EXPECT_EQ(names[lint.size()], "race");
    EXPECT_EQ(names[lint.size() + 1], "lockset");
    EXPECT_EQ(names[lint.size() + 2], "deadlock");
    EXPECT_EQ(names.back(), "audit");
}

TEST(Registry, PassFilterSelectsAnalyses)
{
    Program p = makeSplitLockProgram(/*split=*/true);
    ExecConfig cfg{.numThreads = 4};
    Pinball pb = recordPinball(p, cfg, /*quantum=*/10);

    AnalysisContext ctx;
    ctx.lint.prog = &p;
    ctx.lint.pinball = &pb;

    DiagnosticSink only_lockset;
    runAnalyses(ctx, only_lockset, {"lockset"});
    EXPECT_TRUE(hasDiag(only_lockset.diagnostics(), Severity::Error,
                        "lockset", "inconsistent lock discipline") ||
                hasDiag(only_lockset.diagnostics(), Severity::Warning,
                        "lockset", "inconsistent lock discipline"));
    for (const auto &d : only_lockset.diagnostics())
        EXPECT_EQ(d.pass, "lockset") << d.message;

    // The race pass alone is clean on this program (the barrier orders
    // the phases), so the filtered run reports no findings.
    DiagnosticSink only_race;
    size_t errs = runAnalyses(ctx, only_race, {"race"});
    EXPECT_EQ(errs, 0u);
    for (const auto &d : only_race.diagnostics())
        EXPECT_EQ(d.pass, "race") << d.message;
}

TEST(Registry, StructuralErrorsGateDynamicAnalyses)
{
    Program p = makeSplitLockProgram(/*split=*/true);
    ExecConfig cfg{.numThreads = 4};
    Pinball pb = recordPinball(p, cfg, 1000);
    p.blocks[1].id = 5; // corrupt after recording

    AnalysisContext ctx;
    ctx.lint.prog = &p;
    ctx.lint.pinball = &pb;
    DiagnosticSink sink;
    runAnalyses(ctx, sink, {"lockset"});
    // The structure gate ran in a scratch sink, found the corruption,
    // and the dynamic pass never replayed the broken program.
    for (const auto &d : sink.diagnostics())
        EXPECT_NE(d.pass, "lockset") << d.message;
}

TEST(Registry, OutputIsCanonicallySortedAndDeterministic)
{
    Program p = makeSplitLockProgram(/*split=*/true);
    ExecConfig cfg{.numThreads = 4};
    Pinball pb = recordPinball(p, cfg, 1000);

    AnalysisContext ctx;
    ctx.lint.prog = &p;
    ctx.lint.pinball = &pb;

    auto run = [&]() {
        DiagnosticSink sink;
        runAnalyses(ctx, sink);
        return sink.take();
    };
    std::vector<Diagnostic> a = run();
    std::vector<Diagnostic> b = run();
    ASSERT_EQ(a.size(), b.size());
    ASSERT_FALSE(a.empty());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].severity, b[i].severity);
        EXPECT_EQ(a[i].pass, b[i].pass);
        EXPECT_EQ(a[i].location, b[i].location);
        EXPECT_EQ(a[i].message, b[i].message);
    }
    // Canonical order: sorting again must be the identity.
    std::vector<Diagnostic> sorted = a;
    sortDiagnosticsCanonical(sorted);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].message, sorted[i].message) << i;
}

/** The fixed finding list behind the SARIF golden-file test. */
std::vector<Diagnostic>
sarifSampleDiags()
{
    std::vector<Diagnostic> diags{
        {Severity::Error, "deadlock", "lock-order graph",
         "potential deadlock: lock-order cycle lock 0 -> lock 1 -> "
         "lock 0"},
        {Severity::Warning, "lockset", "block 7 (pc 0x401000) instr 2",
         "inconsistent lock discipline on address 0x80000000000"},
        {Severity::Info, "race", "",
         "checked 100 shared accesses: 0 distinct race(s)"},
    };
    sortDiagnosticsCanonical(diags);
    return diags;
}

TEST(Sarif, OutputIsValidJsonWithExpectedStructure)
{
    std::ostringstream os;
    printDiagnosticsSarif(os, sarifSampleDiags());
    const std::string out = os.str();
    std::string err;
    ASSERT_TRUE(parseJson(out, &err)) << err;
    EXPECT_NE(out.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(out.find("\"name\": \"looppoint-analysis\""),
              std::string::npos);
    EXPECT_NE(out.find("\"ruleId\": \"deadlock\""), std::string::npos);
    EXPECT_NE(out.find("\"level\": \"note\""), std::string::npos);
    EXPECT_NE(out.find("\"fullyQualifiedName\": \"lock-order graph\""),
              std::string::npos);
}

TEST(Sarif, MatchesCommittedGolden)
{
    std::ostringstream os;
    printDiagnosticsSarif(os, sarifSampleDiags());
    const std::string golden_path =
        std::string(LOOPPOINT_TEST_DATA_DIR) + "/analysis_golden.sarif";
    std::ifstream golden(golden_path);
    ASSERT_TRUE(golden) << "missing golden file " << golden_path;
    std::stringstream want;
    want << golden.rdbuf();
    EXPECT_EQ(os.str(), want.str())
        << "SARIF output drifted from the committed golden; if the "
           "change is intentional, regenerate " << golden_path;
}

TEST(Baseline, RoundTripSuppressesExactlyTheSnapshotFindings)
{
    std::vector<Diagnostic> diags{
        {Severity::Error, "race", "block 3", "data race on 0x1000"},
        {Severity::Error, "deadlock", "lock-order graph",
         "potential deadlock"},
        {Severity::Warning, "lockset", "block 9", "inconsistent"},
        {Severity::Info, "race", "", "checked 42 accesses"},
    };
    std::ostringstream os;
    writeBaseline(os, diags);
    EXPECT_NE(os.str().find("looppoint-baseline-v1"),
              std::string::npos);

    std::istringstream is(os.str());
    auto loaded = loadBaseline(is);
    ASSERT_TRUE(loaded.ok()) << loaded.error().describe();
    EXPECT_EQ(loaded.value().size(), 3u); // info never baselined

    // Known findings are suppressed; the info line survives.
    std::vector<Diagnostic> again = diags;
    EXPECT_EQ(applyBaseline(again, loaded.value()), 3u);
    ASSERT_EQ(again.size(), 1u);
    EXPECT_EQ(again[0].severity, Severity::Info);

    // A finding that changed in any visible way is new again.
    std::vector<Diagnostic> changed = diags;
    changed[0].message += " (moved)";
    EXPECT_EQ(applyBaseline(changed, loaded.value()), 2u);
    EXPECT_EQ(changed.size(), 2u);
}

TEST(Baseline, FingerprintSeparatesFields)
{
    // The field separator prevents adjacent fields from colliding
    // ("ab"+"c" vs "a"+"bc").
    Diagnostic a{Severity::Error, "ab", "c", "m"};
    Diagnostic b{Severity::Error, "a", "bc", "m"};
    EXPECT_NE(diagnosticFingerprint(a), diagnosticFingerprint(b));
}

TEST(Baseline, LoaderRejectsJunk)
{
    std::istringstream not_baseline("some other file\n");
    auto r1 = loadBaseline(not_baseline);
    ASSERT_FALSE(r1.ok());
    EXPECT_EQ(r1.error().kind, LoadErrorKind::BadMagic);

    std::istringstream bad_line(
        "looppoint-baseline-v1\nfinding not-hex\n");
    auto r2 = loadBaseline(bad_line);
    ASSERT_FALSE(r2.ok());
    EXPECT_EQ(r2.error().kind, LoadErrorKind::Parse);

    std::istringstream with_comments(
        "looppoint-baseline-v1\n\n# a comment\n"
        "finding 00000000000000ff\n");
    auto r3 = loadBaseline(with_comments);
    ASSERT_TRUE(r3.ok());
    EXPECT_EQ(r3.value().size(), 1u);
    EXPECT_TRUE(r3.value().count(0xffu));
}

TEST(Diagnostics, PipelineRunsAnalysesBehindConfigFlags)
{
    Program p = generateProgram(demoMatrixApp(), InputClass::Test);
    LoopPointOptions opts;
    opts.numThreads = 4;
    opts.sliceSizePerThread = 25'000;
    opts.analysis.lint = true;
    opts.analysis.raceCheck = true;
    LoopPointPipeline pipe(p, opts);
    LoopPointResult lp = pipe.analyze();
    EXPECT_FALSE(lp.diagnostics.empty());
    EXPECT_EQ(countSeverity(lp.diagnostics, Severity::Error), 0u);
    bool have_lint = false, have_race = false;
    for (const auto &d : lp.diagnostics) {
        have_lint |= d.pass == "marker-stability";
        have_race |= d.pass == "race";
    }
    EXPECT_TRUE(have_lint);
    EXPECT_TRUE(have_race);
}

TEST(Diagnostics, PipelineSkipsAnalysesByDefault)
{
    Program p = generateProgram(demoMatrixApp(), InputClass::Test);
    LoopPointOptions opts;
    opts.numThreads = 4;
    opts.sliceSizePerThread = 25'000;
    LoopPointPipeline pipe(p, opts);
    LoopPointResult lp = pipe.analyze();
    EXPECT_TRUE(lp.diagnostics.empty());
}

} // namespace
} // namespace looppoint
