/**
 * @file
 * Tests for the guest-program analyses: ProgramLint (one seeded defect
 * per lint defect class, asserting the exact diagnostic), the
 * happens-before RaceDetector (an injected guest race it must flag, a
 * negative control, and zero false positives over every bundled
 * workload suite), the diagnostic emitters, and the pipeline wiring.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "analysis/program_lint.hh"
#include "analysis/race_detector.hh"
#include "core/looppoint.hh"
#include "dcfg/dcfg.hh"
#include "isa/addr_space.hh"
#include "isa/program_builder.hh"
#include "pinball/pinball.hh"
#include "util/logging.hh"
#include "workload/descriptor.hh"

namespace looppoint {
namespace {

bool
hasDiag(const std::vector<Diagnostic> &diags, Severity sev,
        const std::string &pass, const std::string &substr)
{
    return std::any_of(
        diags.begin(), diags.end(), [&](const Diagnostic &d) {
            return d.severity == sev && d.pass == pass &&
                   d.message.find(substr) != std::string::npos;
        });
}

size_t
countSeverity(const std::vector<Diagnostic> &diags, Severity sev)
{
    size_t n = 0;
    for (const auto &d : diags)
        if (d.severity == sev)
            ++n;
    return n;
}

/** A small well-formed program exercising locks and dynamic-for. */
Program
makeValidProgram()
{
    ProgramBuilder b("lint-valid", 7);
    uint32_t k0 = b.beginKernel("dyn", SchedPolicy::DynamicFor, 64, 4);
    b.addStream({.footprintBytes = 1 << 16, .strideBytes = 8});
    b.addBlock({.numInstrs = 24, .fracMem = 0.3, .streams = {0}});
    b.addCritical(0, {.numInstrs = 10, .streams = {0}});
    b.endKernel();
    uint32_t k1 = b.beginKernel("stat", SchedPolicy::StaticFor, 48);
    b.addStream({.footprintBytes = 1 << 14, .strideBytes = 8});
    b.beginInnerLoop(4);
    b.addBlock({.numInstrs = 16, .fracMem = 0.4, .streams = {0}});
    b.endInnerLoop();
    b.endKernel();
    b.runKernels({k0, k1}, 2);
    return b.build();
}

std::vector<Diagnostic>
lintOnly(const Program &prog, const std::string &pass,
         const Dcfg *dcfg = nullptr, const Pinball *pinball = nullptr)
{
    LintContext ctx;
    ctx.prog = &prog;
    ctx.dcfg = dcfg;
    ctx.pinball = pinball;
    DiagnosticSink sink;
    ProgramLint().run(ctx, sink, {pass});
    return sink.take();
}

TEST(ProgramLint, CleanProgramHasNoFindings)
{
    Program p = makeValidProgram();
    LintContext ctx;
    ctx.prog = &p;
    DiagnosticSink sink;
    size_t errors = ProgramLint().run(ctx, sink);
    EXPECT_EQ(errors, 0u);
    for (const auto &d : sink.diagnostics())
        EXPECT_NE(d.severity, Severity::Error) << d.message;
}

TEST(ProgramLint, PassNamesAreExposedInRunOrder)
{
    std::vector<std::string> names = lintPassNames();
    ASSERT_EQ(names.size(), 7u);
    EXPECT_EQ(names.front(), "structure");
    EXPECT_EQ(names.back(), "marker-stability");
}

TEST(ProgramLint, StructureCatchesNonDenseBlockIds)
{
    Program p = makeValidProgram();
    p.blocks[1].id = 5;
    auto diags = lintOnly(p, "structure");
    EXPECT_TRUE(hasDiag(diags, Severity::Error, "structure",
                        "non-dense BlockId"));
}

TEST(ProgramLint, StructureCatchesDanglingKernelReference)
{
    Program p = makeValidProgram();
    p.kernels[0].workerHeader = 9999;
    auto diags = lintOnly(p, "structure");
    EXPECT_TRUE(hasDiag(diags, Severity::Error, "structure",
                        "out-of-range block"));
}

TEST(ProgramLint, StructuralErrorsGateLaterPasses)
{
    Program p = makeValidProgram();
    p.blocks[1].id = 5;
    LintContext ctx;
    ctx.prog = &p;
    DiagnosticSink sink;
    ProgramLint().run(ctx, sink);
    auto diags = sink.take();
    EXPECT_TRUE(hasDiag(diags, Severity::Info, "lint",
                        "remaining passes skipped"));
    for (const auto &d : diags)
        EXPECT_TRUE(d.pass == "structure" || d.pass == "lint")
            << d.pass;
}

TEST(ProgramLint, ReachabilityCatchesOrphanBlock)
{
    Program p = makeValidProgram();
    BasicBlock orphan;
    orphan.id = static_cast<BlockId>(p.blocks.size());
    orphan.pc = 0xdead000;
    orphan.image = ImageId::Main;
    orphan.routine = 0;
    orphan.instrs.push_back({});
    p.blocks.push_back(orphan);
    p.finalizeDerived();
    auto diags = lintOnly(p, "reachability");
    EXPECT_TRUE(hasDiag(diags, Severity::Warning, "reachability",
                        "unreachable"));
    EXPECT_TRUE(hasDiag(diags, Severity::Warning, "reachability",
                        "missing from its routine"));
}

TEST(ProgramLint, StreamsCatchesBaseEscapingItsSlot)
{
    Program p = makeValidProgram();
    p.kernels[0].plans[0].base += 64;
    auto diags = lintOnly(p, "streams");
    EXPECT_TRUE(hasDiag(diags, Severity::Error, "streams",
                        "escapes its address-space slot"));
}

TEST(ProgramLint, StreamsCatchesOverlappingRanges)
{
    Program p = makeValidProgram();
    // Park kernel 1's stream on kernel 0's slot: two kernels now
    // claim overlapping address ranges.
    p.kernels[1].plans[0].base = p.kernels[0].plans[0].base;
    auto diags = lintOnly(p, "streams");
    EXPECT_TRUE(hasDiag(diags, Severity::Error, "streams",
                        "overlaps"));
}

TEST(ProgramLint, StreamsCatchesFootprintBeyondItsBound)
{
    Program p = makeValidProgram();
    StreamPlan &plan = p.kernels[0].plans[0];
    ASSERT_FALSE(plan.shared);
    plan.footprint = kPrivPerThreadBytes + 64;
    plan.jumpBound = plan.footprint / plan.stride + 1;
    auto diags = lintOnly(p, "streams");
    EXPECT_TRUE(hasDiag(diags, Severity::Error, "streams",
                        "exceeds the per-thread private bound"));
}

TEST(ProgramLint, SyncCatchesUnpairedCriticalRelease)
{
    Program p = makeValidProgram();
    BodyItem *critical = nullptr;
    for (auto &item : p.kernels[0].body)
        if (item.kind == BodyItem::Kind::Critical)
            critical = &item;
    ASSERT_NE(critical, nullptr);
    critical->blocks[2] = critical->blocks[1]; // release -> CS block
    auto diags = lintOnly(p, "sync");
    EXPECT_TRUE(hasDiag(diags, Severity::Error, "sync",
                        "unpaired lock release"));
}

TEST(ProgramLint, SyncCatchesUnpairedBarrierStub)
{
    Program p = makeValidProgram();
    p.runtime.barrierEnter = kInvalidBlock;
    auto diags = lintOnly(p, "sync");
    EXPECT_TRUE(hasDiag(diags, Severity::Error, "sync",
                        "unpaired barrier stubs"));
}

TEST(ProgramLint, SyncWarnsOnDeclaredButUnusedFeatures)
{
    Program p = makeValidProgram();
    p.kernels[1].sync.lock = true; // declared, never used
    auto diags = lintOnly(p, "sync");
    EXPECT_TRUE(hasDiag(diags, Severity::Warning, "sync",
                        "declares critical sections"));
}

/** Main-image blocks of one routine, for handcrafted loop lists. */
std::vector<BlockId>
sameRoutineBlocks(const Program &p, size_t need)
{
    for (size_t r = 0; r < p.routines.size(); ++r) {
        std::vector<BlockId> out;
        for (size_t i = 0; i < p.blocks.size(); ++i)
            if (p.blocks[i].routine == r &&
                p.blocks[i].image == ImageId::Main)
                out.push_back(static_cast<BlockId>(i));
        if (out.size() >= need)
            return out;
    }
    return {};
}

TEST(ProgramLint, LoopsCatchesNonNaturalOverlap)
{
    Program p = makeValidProgram();
    std::vector<BlockId> bs = sameRoutineBlocks(p, 4);
    ASSERT_GE(bs.size(), 4u);
    const uint32_t routine = p.blocks[bs[0]].routine;
    DcfgLoop l1{bs[0], {bs[0], bs[1], bs[2]}, 3, 4, 1,
                ImageId::Main, routine};
    DcfgLoop l2{bs[1], {bs[1], bs[2], bs[3]}, 3, 4, 1,
                ImageId::Main, routine};
    DiagnosticSink sink;
    lintLoopList(p, {l1, l2}, sink);
    EXPECT_TRUE(hasDiag(sink.diagnostics(), Severity::Error, "loops",
                        "without nesting"));
}

TEST(ProgramLint, LoopsCatchesHeaderOutsideBody)
{
    Program p = makeValidProgram();
    std::vector<BlockId> bs = sameRoutineBlocks(p, 2);
    ASSERT_GE(bs.size(), 2u);
    DcfgLoop l{bs[0], {bs[1]}, 1, 2, 1, ImageId::Main,
               p.blocks[bs[0]].routine};
    DiagnosticSink sink;
    lintLoopList(p, {l}, sink);
    EXPECT_TRUE(hasDiag(sink.diagnostics(), Severity::Error, "loops",
                        "does not contain its header"));
}

TEST(ProgramLint, LoopsCatchesMalformedAccounting)
{
    Program p = makeValidProgram();
    std::vector<BlockId> bs = sameRoutineBlocks(p, 1);
    ASSERT_GE(bs.size(), 1u);
    // More back edges than header executions is impossible in a real
    // profile.
    DcfgLoop l{bs[0], {bs[0]}, 5, 3, 0, ImageId::Main,
               p.blocks[bs[0]].routine};
    DiagnosticSink sink;
    lintLoopList(p, {l}, sink);
    EXPECT_TRUE(hasDiag(sink.diagnostics(), Severity::Error, "loops",
                        "loop accounting is malformed"));
}

TEST(ProgramLint, NestedLoopsAreAccepted)
{
    Program p = makeValidProgram();
    std::vector<BlockId> bs = sameRoutineBlocks(p, 3);
    ASSERT_GE(bs.size(), 3u);
    const uint32_t routine = p.blocks[bs[0]].routine;
    DcfgLoop outer{bs[0], {bs[0], bs[1], bs[2]}, 2, 3, 1,
                   ImageId::Main, routine};
    DcfgLoop inner{bs[1], {bs[1], bs[2]}, 4, 5, 1, ImageId::Main,
                   routine};
    DiagnosticSink sink;
    lintLoopList(p, {outer, inner}, sink);
    EXPECT_EQ(countSeverity(sink.diagnostics(), Severity::Error), 0u);
}

TEST(ProgramLint, MarkersCatchesDuplicatePcs)
{
    Program p = makeValidProgram();
    p.blocks[2].pc = p.blocks[1].pc;
    auto diags = lintOnly(p, "markers");
    EXPECT_TRUE(hasDiag(diags, Severity::Error, "markers",
                        "shares pc"));
}

TEST(ProgramLint, MarkersCatchesMissingMainImageHeaders)
{
    Program p = makeValidProgram();
    // A DCFG with no edges discovers no loops, hence no legal markers.
    Dcfg empty(p, {}, {}, std::vector<uint64_t>(p.numBlocks(), 0));
    auto diags = lintOnly(p, "markers", &empty);
    EXPECT_TRUE(hasDiag(diags, Severity::Error, "markers",
                        "no main-image loop headers"));
}

TEST(ProgramLint, MarkerStabilityAcceptsRealRecording)
{
    Program p = makeValidProgram();
    ExecConfig cfg{.numThreads = 4};
    Pinball pb = recordPinball(p, cfg, 500);
    DcfgBuilder builder(p, cfg.numThreads);
    replayPinball(p, pb, 500, &builder);
    Dcfg dcfg = builder.build();
    auto diags = lintOnly(p, "marker-stability", &dcfg, &pb);
    EXPECT_EQ(countSeverity(diags, Severity::Error), 0u);
    EXPECT_TRUE(hasDiag(diags, Severity::Info, "marker-stability",
                        "stable across two constrained replays"));
}

TEST(ProgramLint, MarkerStabilityCatchesReplayDivergence)
{
    Program p = makeValidProgram();
    ExecConfig cfg{.numThreads = 4};
    Pinball pb = recordPinball(p, cfg, 500);
    DcfgBuilder builder(p, cfg.numThreads);
    replayPinball(p, pb, 500, &builder);
    Dcfg dcfg = builder.build();
    pb.threadFilteredIcounts[0] += 1; // corrupt the recording
    auto diags = lintOnly(p, "marker-stability", &dcfg, &pb);
    EXPECT_TRUE(hasDiag(diags, Severity::Error, "marker-stability",
                        "constrained replay diverged"));
}

TEST(ProgramLint, MarkerStabilityCatchesProfileCountMismatch)
{
    Program p = makeValidProgram();
    ExecConfig cfg{.numThreads = 4};
    Pinball pb = recordPinball(p, cfg, 500);
    DcfgBuilder builder(p, cfg.numThreads);
    replayPinball(p, pb, 500, &builder);
    Dcfg real = builder.build();
    std::vector<BlockId> headers = real.mainImageLoopHeaders();
    ASSERT_FALSE(headers.empty());
    std::vector<uint64_t> execs(p.numBlocks(), 0);
    for (size_t i = 0; i < p.numBlocks(); ++i)
        execs[i] = real.blockExecs(static_cast<BlockId>(i));
    execs[headers[0]] += 7; // profile no longer matches any replay
    Dcfg tampered(p, real.edges(), real.summaryEdges(), execs);
    auto diags = lintOnly(p, "marker-stability", &tampered, &pb);
    EXPECT_TRUE(hasDiag(diags, Severity::Error, "marker-stability",
                        "disagrees with the DCFG profile count"));
}

// --------------------------------------------------------------------
// RaceDetector
// --------------------------------------------------------------------

/**
 * The injected guest race: a dynamic-for kernel whose master prologue
 * stores to the shared stream without any ordering operation between
 * the prologue and the worker that claims iteration 0. With chunk size
 * 1 and a recording quantum smaller than the prologue, thread 0's
 * first turn expires before it can claim a chunk, so another thread
 * takes iteration 0 and touches the same shared-window positions the
 * prologue wrote — a textbook unsynchronized publish.
 */
Program
makeRacyProgram(bool shared_prologue)
{
    ProgramBuilder b(shared_prologue ? "racy" : "racy-control", 11);
    uint32_t k = b.beginKernel("pub", SchedPolicy::DynamicFor, 4, 1);
    b.addStream({.footprintBytes = 1 << 16,
                 .strideBytes = 8,
                 .shared = true});
    b.addStream({.footprintBytes = 1 << 12, .strideBytes = 8});
    b.setMasterPrologue({.numInstrs = 64,
                         .fracMem = 0.5,
                         .loadFrac = 0.0,
                         .streams = {shared_prologue
                                         ? uint8_t{0}
                                         : uint8_t{1}}},
                        /*is_single=*/false);
    b.addBlock({.numInstrs = 32, .fracMem = 0.5, .streams = {0}});
    b.endKernel();
    b.runKernels({k}, 1);
    return b.build();
}

TEST(RaceDetector, FlagsInjectedMasterPrologueRace)
{
    Program p = makeRacyProgram(/*shared_prologue=*/true);
    ExecConfig cfg{.numThreads = 4};
    Pinball pb = recordPinball(p, cfg, /*quantum=*/10);
    DiagnosticSink sink;
    RaceCheckStats st = checkGuestRaces(p, pb, sink);
    EXPECT_GT(st.races, 0u);
    EXPECT_TRUE(hasDiag(sink.diagnostics(), Severity::Error, "race",
                        "data race"));
    // Both sites must be cited.
    bool two_sites = false;
    for (const auto &d : sink.diagnostics())
        if (d.pass == "race" &&
            d.message.find("unordered with") != std::string::npos &&
            !d.location.empty())
            two_sites = true;
    EXPECT_TRUE(two_sites);
}

TEST(RaceDetector, PrivatePrologueControlIsClean)
{
    Program p = makeRacyProgram(/*shared_prologue=*/false);
    ExecConfig cfg{.numThreads = 4};
    Pinball pb = recordPinball(p, cfg, /*quantum=*/10);
    DiagnosticSink sink;
    RaceCheckStats st = checkGuestRaces(p, pb, sink);
    EXPECT_EQ(st.races, 0u);
    EXPECT_EQ(countSeverity(sink.diagnostics(), Severity::Error), 0u);
}

TEST(RaceDetector, ReportsAreDeduplicatedPerSitePair)
{
    Program p = makeRacyProgram(/*shared_prologue=*/true);
    ExecConfig cfg{.numThreads = 4};
    Pinball pb = recordPinball(p, cfg, /*quantum=*/10);
    DiagnosticSink sink;
    RaceCheckStats st = checkGuestRaces(p, pb, sink);
    // Each racing (prologue instr, body instr) site pair is reported
    // exactly once, and reports beyond the cap are only counted.
    EXPECT_GE(st.races, 1u);
    EXPECT_LE(st.races, 64u);
    const size_t reported =
        countSeverity(sink.diagnostics(), Severity::Error) +
        countSeverity(sink.diagnostics(), Severity::Warning);
    EXPECT_EQ(reported,
              std::min(st.races, RaceDetector::kMaxReports));
}

TEST(RaceDetector, CorruptPinballReportsDivergence)
{
    Program p = makeValidProgram();
    ExecConfig cfg{.numThreads = 4};
    Pinball pb = recordPinball(p, cfg, 500);
    pb.threadFilteredIcounts[1] += 3;
    DiagnosticSink sink;
    checkGuestRaces(p, pb, sink);
    EXPECT_TRUE(hasDiag(sink.diagnostics(), Severity::Error, "race",
                        "replay diverged"));
}

void
expectSuiteClean(const std::vector<AppDescriptor> &apps)
{
    for (const auto &app : apps) {
        Program p = generateProgram(app, InputClass::Test);
        ExecConfig cfg;
        cfg.numThreads = app.effectiveThreads(4);
        Pinball pb = recordPinball(p, cfg, 1000);
        DcfgBuilder builder(p, cfg.numThreads);
        replayPinball(p, pb, 1000, &builder);
        Dcfg dcfg = builder.build();

        DiagnosticSink sink;
        LintContext ctx;
        ctx.prog = &p;
        ctx.dcfg = &dcfg;
        ctx.pinball = &pb;
        ProgramLint().run(ctx, sink);
        RaceCheckStats st = checkGuestRaces(p, pb, sink);
        EXPECT_EQ(st.races, 0u) << app.name;
        EXPECT_EQ(countSeverity(sink.diagnostics(), Severity::Error),
                  0u)
            << app.name;
        EXPECT_EQ(countSeverity(sink.diagnostics(), Severity::Warning),
                  0u)
            << app.name;
    }
}

TEST(RaceDetector, Spec2017SuiteIsCleanUnderLintAndRaceCheck)
{
    expectSuiteClean(spec2017Apps());
}

TEST(RaceDetector, NpbSuiteIsCleanUnderLintAndRaceCheck)
{
    expectSuiteClean(npbApps());
}

TEST(RaceDetector, PthreadAndDemoAppsAreCleanUnderLintAndRaceCheck)
{
    std::vector<AppDescriptor> apps = pthreadApps();
    apps.push_back(demoMatrixApp());
    expectSuiteClean(apps);
}

// --------------------------------------------------------------------
// Diagnostics plumbing
// --------------------------------------------------------------------

TEST(Diagnostics, SinkCountsAndTakes)
{
    DiagnosticSink sink;
    sink.error("p1", "loc", "bad");
    sink.warning("p2", "", "odd");
    sink.info("p3", "", "fyi");
    EXPECT_EQ(sink.errors(), 1u);
    EXPECT_EQ(sink.warnings(), 1u);
    EXPECT_EQ(sink.count(Severity::Info), 1u);
    auto diags = sink.take();
    EXPECT_EQ(diags.size(), 3u);
    EXPECT_TRUE(sink.empty());
}

TEST(Diagnostics, TextEmitterFormat)
{
    std::vector<Diagnostic> diags{
        {Severity::Error, "streams", "kernel 'k0' stream 1",
         "footprint out of range"},
        {Severity::Info, "race", "", "0 races"},
    };
    std::ostringstream os;
    printDiagnosticsText(os, diags);
    EXPECT_EQ(os.str(),
              "error [streams] kernel 'k0' stream 1: footprint out "
              "of range\n"
              "info [race] 0 races\n");
}

TEST(Diagnostics, JsonEmitterEscapesSpecials)
{
    std::vector<Diagnostic> diags{
        {Severity::Warning, "sync", "a\"b\\c", "line1\nline2\t"},
    };
    std::ostringstream os;
    printDiagnosticsJson(os, diags);
    EXPECT_EQ(os.str(),
              "[\n  {\"severity\": \"warning\", \"pass\": \"sync\", "
              "\"location\": \"a\\\"b\\\\c\", "
              "\"message\": \"line1\\nline2\\t\"}\n]\n");
}

TEST(Diagnostics, PipelineRunsAnalysesBehindConfigFlags)
{
    Program p = generateProgram(demoMatrixApp(), InputClass::Test);
    LoopPointOptions opts;
    opts.numThreads = 4;
    opts.sliceSizePerThread = 25'000;
    opts.analysis.lint = true;
    opts.analysis.raceCheck = true;
    LoopPointPipeline pipe(p, opts);
    LoopPointResult lp = pipe.analyze();
    EXPECT_FALSE(lp.diagnostics.empty());
    EXPECT_EQ(countSeverity(lp.diagnostics, Severity::Error), 0u);
    bool have_lint = false, have_race = false;
    for (const auto &d : lp.diagnostics) {
        have_lint |= d.pass == "marker-stability";
        have_race |= d.pass == "race";
    }
    EXPECT_TRUE(have_lint);
    EXPECT_TRUE(have_race);
}

TEST(Diagnostics, PipelineSkipsAnalysesByDefault)
{
    Program p = generateProgram(demoMatrixApp(), InputClass::Test);
    LoopPointOptions opts;
    opts.numThreads = 4;
    opts.sliceSizePerThread = 25'000;
    LoopPointPipeline pipe(p, opts);
    LoopPointResult lp = pipe.analyze();
    EXPECT_TRUE(lp.diagnostics.empty());
}

} // namespace
} // namespace looppoint
