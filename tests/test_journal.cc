/**
 * @file
 * Fault-tolerance layer tests, part 2: the run journal and the
 * fault-injected checkpointed-simulation pipeline. Covers the journal
 * codec (lossless double round-trips, torn-tail tolerance, run-key
 * mismatch), per-region failure isolation (retry, watchdog
 * divergence, graceful degradation with renormalized Eq. 2 weights),
 * and the headline crash-resume property: a run killed mid-phase and
 * resumed from its journal is bit-identical to an uninterrupted one.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/looppoint.hh"
#include "core/run_journal.hh"
#include "sim/config.hh"
#include "util/fault.hh"
#include "util/interrupt.hh"
#include "util/logging.hh"
#include "workload/descriptor.hh"

namespace looppoint {
namespace {

RunKey
makeKey()
{
    RunKey key;
    key.app = "628.pop2_s.1";
    key.input = "test";
    key.threads = 4;
    key.waitPolicy = "passive";
    key.seed = 1;
    key.constrained = false;
    key.simFingerprint = 0xDEADBEEF;
    return key;
}

RunJournal::Record
makeRecord(uint32_t idx)
{
    RunJournal::Record rec;
    rec.regionIndex = idx;
    rec.start = Marker{0x400000 + idx, 10 + idx};
    rec.end = Marker{0x400100 + idx, 20 + idx};
    // Deliberately awkward doubles: the codec must round-trip them
    // losslessly or find() will miss on resume.
    rec.multiplier = 3.0000000000000004 + idx * 0.1;
    rec.attempts = 1 + idx;
    rec.metrics.cycles = 1000 + idx;
    rec.metrics.instructions = 2000 + idx;
    rec.metrics.filteredInstructions = 1500 + idx;
    rec.metrics.runtimeSeconds = 1.0 / 3.0 + idx;
    rec.metrics.branches = 100 + idx;
    rec.metrics.branchMispredicts = 10 + idx;
    rec.metrics.l1dAccesses = 500 + idx;
    rec.metrics.l1dMisses = 50 + idx;
    rec.metrics.l2Accesses = 40 + idx;
    rec.metrics.l2Misses = 20 + idx;
    rec.metrics.l3Accesses = 15 + idx;
    rec.metrics.l3Misses = 5 + idx;
    return rec;
}

/** A fresh journal path under the test temp dir. */
std::string
journalPath(const std::string &name)
{
    std::string path = testing::TempDir() + "lp_journal_" + name + ".txt";
    std::remove(path.c_str());
    return path;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
}

TEST(RunKeyCodec, EncodeDistinguishesRuns)
{
    RunKey a = makeKey();
    RunKey b = a;
    EXPECT_EQ(a.encode(), b.encode());
    b.seed = 2;
    EXPECT_NE(a.encode(), b.encode());
    b = a;
    b.simFingerprint ^= 1;
    EXPECT_NE(a.encode(), b.encode());
    b = a;
    b.constrained = true;
    EXPECT_NE(a.encode(), b.encode());
}

TEST(Journal, AppendLoadRoundTrip)
{
    const std::string path = journalPath("roundtrip");
    {
        RunJournal j(path, makeKey());
        for (uint32_t i = 0; i < 3; ++i)
            j.append(makeRecord(i));
        EXPECT_EQ(j.size(), 3u);
        EXPECT_EQ(j.failedWrites(), 0u);
    }
    RunJournal j2(path, makeKey());
    auto err = j2.load(/*must_exist=*/true);
    ASSERT_FALSE(err.has_value()) << err->describe();
    EXPECT_EQ(j2.size(), 3u);
    EXPECT_EQ(j2.droppedRecords(), 0u);
    for (uint32_t i = 0; i < 3; ++i) {
        RunJournal::Record want = makeRecord(i);
        auto got = j2.find(i, want.start, want.end, want.multiplier);
        ASSERT_TRUE(got.has_value()) << "record " << i;
        EXPECT_EQ(*got, want);
    }
}

TEST(Journal, FindRequiresExactIdentity)
{
    const std::string path = journalPath("identity");
    RunJournal j(path, makeKey());
    RunJournal::Record rec = makeRecord(0);
    j.append(rec);
    EXPECT_TRUE(j.find(0, rec.start, rec.end, rec.multiplier));
    // Any identity drift — index, marker, or weight — must miss, so a
    // changed analysis can never silently reuse stale metrics.
    EXPECT_FALSE(j.find(1, rec.start, rec.end, rec.multiplier));
    EXPECT_FALSE(j.find(0, Marker{rec.start.pc, rec.start.count + 1},
                        rec.end, rec.multiplier));
    EXPECT_FALSE(j.find(0, rec.start, rec.end,
                        rec.multiplier * (1.0 + 1e-15)));
}

TEST(Journal, MissingFile)
{
    const std::string path = journalPath("missing");
    RunJournal strict(path, makeKey());
    auto err = strict.load(/*must_exist=*/true);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->kind, LoadErrorKind::Io);

    RunJournal lax(path, makeKey());
    EXPECT_FALSE(lax.load(/*must_exist=*/false).has_value());
    EXPECT_EQ(lax.size(), 0u);
}

TEST(Journal, KeyMismatchIsValidation)
{
    const std::string path = journalPath("keymismatch");
    {
        RunJournal j(path, makeKey());
        j.append(makeRecord(0));
    }
    RunKey other = makeKey();
    other.seed = 99;
    RunJournal j2(path, other);
    auto err = j2.load(/*must_exist=*/true);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->kind, LoadErrorKind::Validation);
}

TEST(Journal, ForeignFileIsBadMagic)
{
    const std::string path = journalPath("foreign");
    spit(path, "this is not a journal\n");
    RunJournal j(path, makeKey());
    auto err = j.load(/*must_exist=*/true);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->kind, LoadErrorKind::BadMagic);

    spit(path, "");
    RunJournal j2(path, makeKey());
    auto err2 = j2.load(/*must_exist=*/true);
    ASSERT_TRUE(err2.has_value());
    EXPECT_EQ(err2->kind, LoadErrorKind::Truncated);
}

TEST(Journal, TornTailIsDroppedNotFatal)
{
    const std::string path = journalPath("torntail");
    {
        RunJournal j(path, makeKey());
        for (uint32_t i = 0; i < 3; ++i)
            j.append(makeRecord(i));
    }
    // Simulate an append that raced a power cut: chop the tail
    // mid-record.
    std::string bytes = slurp(path);
    spit(path, bytes.substr(0, bytes.size() - 10));

    RunJournal j2(path, makeKey());
    auto err = j2.load(/*must_exist=*/true);
    ASSERT_FALSE(err.has_value()) << err->describe();
    EXPECT_EQ(j2.size(), 2u);
    EXPECT_EQ(j2.droppedRecords(), 1u);
    RunJournal::Record want = makeRecord(1);
    EXPECT_TRUE(j2.find(1, want.start, want.end, want.multiplier));
}

TEST(Journal, CorruptRecordInvalidatesItsSuffix)
{
    const std::string path = journalPath("corruptmid");
    {
        RunJournal j(path, makeKey());
        for (uint32_t i = 0; i < 3; ++i)
            j.append(makeRecord(i));
    }
    // Flip a byte inside the *first* record's line: everything from
    // there on is untrusted and must be dropped.
    std::string bytes = slurp(path);
    size_t at = bytes.find("region idx=0");
    ASSERT_NE(at, std::string::npos);
    bytes[at + 12] ^= 0x01;
    spit(path, bytes);

    RunJournal j2(path, makeKey());
    auto err = j2.load(/*must_exist=*/true);
    ASSERT_FALSE(err.has_value()) << err->describe();
    EXPECT_EQ(j2.size(), 0u);
    EXPECT_EQ(j2.droppedRecords(), 3u);
}

TEST(Journal, AppendAfterLoadPreservesPriorRecords)
{
    const std::string path = journalPath("appendafter");
    {
        RunJournal j(path, makeKey());
        j.append(makeRecord(0));
    }
    RunJournal j2(path, makeKey());
    ASSERT_FALSE(j2.load(/*must_exist=*/true).has_value());
    j2.append(makeRecord(1));

    RunJournal j3(path, makeKey());
    ASSERT_FALSE(j3.load(/*must_exist=*/true).has_value());
    EXPECT_EQ(j3.size(), 2u);
}

// --------------------------------------- pipeline-level fault tests

/** One analyzed app, shared by every pipeline-level test below (the
 * analysis pass is the expensive part and is read-only from here). */
struct Analyzed
{
    Program prog;
    LoopPointOptions opts;
    std::unique_ptr<LoopPointPipeline> pipe;
    LoopPointResult lp;

    Analyzed()
        : prog(generateProgram(findApp("628.pop2_s.1"),
                               InputClass::Test))
    {
        opts.numThreads =
            findApp("628.pop2_s.1").effectiveThreads(4);
        opts.sliceSizePerThread = 25'000;
        pipe = std::make_unique<LoopPointPipeline>(prog, opts);
        lp = pipe->analyze();
    }
};

const Analyzed &
analyzed()
{
    static Analyzed a;
    return a;
}

using CheckpointedSimResult = LoopPointPipeline::CheckpointedSimResult;

CheckpointedSimResult
runCheckpointed(const SimConfig &sim, RunJournal *journal = nullptr)
{
    return analyzed().pipe->simulateRegionsCheckpointed(
        analyzed().lp, sim, /*constrained=*/false, journal);
}

size_t
errorCount(const std::vector<Diagnostic> &diags)
{
    size_t n = 0;
    for (const auto &d : diags)
        n += d.severity == Severity::Error ? 1 : 0;
    return n;
}

TEST(FaultPipeline, CleanRunHasFullCoverage)
{
    SimConfig sim;
    auto ckpt = runCheckpointed(sim);
    EXPECT_EQ(ckpt.coverage, 1.0); // exactly, by Eq. 2 closure
    EXPECT_EQ(ckpt.failedRegions(), 0u);
    EXPECT_EQ(ckpt.journalHits, 0u);
    EXPECT_TRUE(ckpt.diagnostics.empty());
    for (const auto &o : ckpt.regionOutcomes) {
        EXPECT_TRUE(o.ok);
        EXPECT_FALSE(o.fromJournal);
        EXPECT_EQ(o.attempts, 1u);
    }
}

TEST(FaultPipeline, DegradedRunRenormalizesExtrapolation)
{
    const auto &lp = analyzed().lp;
    ASSERT_GE(lp.regions.size(), 2u);

    SimConfig clean;
    auto base = runCheckpointed(clean);
    MetricPrediction full =
        extrapolateMetrics(lp, base.regionMetrics, clean);
    EXPECT_EQ(full.coverage, 1.0);

    SimConfig sim;
    sim.faults = FaultPlan::parse("sim:region=0,kind=throw");
    auto ckpt = runCheckpointed(sim);

    EXPECT_EQ(ckpt.failedRegions(), 1u);
    EXPECT_FALSE(ckpt.regionOutcomes[0].ok);
    EXPECT_NE(ckpt.regionOutcomes[0].error.find("injected"),
              std::string::npos);
    EXPECT_LT(ckpt.coverage, 1.0);
    EXPECT_GT(ckpt.coverage, 0.0);
    EXPECT_GE(errorCount(ckpt.diagnostics), 1u);

    // The surviving regions simulated identically to the clean run.
    for (size_t i = 1; i < lp.regions.size(); ++i)
        EXPECT_EQ(ckpt.regionMetrics[i], base.regionMetrics[i]);

    // Degradation-aware Eq. 1: the lost region's weight is gone and
    // the survivors are renormalized by the covered fraction.
    MetricPrediction pred = extrapolateMetrics(
        lp, ckpt.regionMetrics, ckpt.okMask(), sim);
    EXPECT_EQ(pred.coverage, ckpt.coverage);

    double lost_w = 0.0, total_w = 0.0;
    for (const auto &r : lp.regions)
        total_w += r.multiplier *
                   static_cast<double>(r.filteredIcount);
    lost_w = lp.regions[0].multiplier *
             static_cast<double>(lp.regions[0].filteredIcount);
    EXPECT_DOUBLE_EQ(ckpt.coverage, (total_w - lost_w) / total_w);

    double expect_cycles = 0.0;
    for (size_t i = 1; i < lp.regions.size(); ++i)
        expect_cycles +=
            lp.regions[i].multiplier / ckpt.coverage *
            static_cast<double>(ckpt.regionMetrics[i].cycles);
    EXPECT_DOUBLE_EQ(pred.cycles, expect_cycles);

    // With every region masked out, the prediction degrades to empty
    // instead of dividing by zero.
    std::vector<uint8_t> none(lp.regions.size(), 0);
    MetricPrediction zero =
        extrapolateMetrics(lp, ckpt.regionMetrics, none, sim);
    EXPECT_EQ(zero.coverage, 0.0);
    EXPECT_EQ(zero.cycles, 0.0);
}

TEST(FaultPipeline, RetryRecoversTransientFault)
{
    SimConfig clean;
    auto base = runCheckpointed(clean);

    SimConfig sim;
    sim.faults = FaultPlan::parse("sim:region=0,kind=throw,times=1");
    sim.regionRetries = 1;
    auto ckpt = runCheckpointed(sim);

    EXPECT_EQ(ckpt.failedRegions(), 0u);
    EXPECT_EQ(ckpt.coverage, 1.0);
    EXPECT_EQ(ckpt.regionOutcomes[0].attempts, 2u);
    EXPECT_EQ(errorCount(ckpt.diagnostics), 0u);
    ASSERT_EQ(ckpt.diagnostics.size(), 1u); // the recovery warning
    // Retried-from-checkpoint simulation is bit-identical: the retry
    // starts from a pristine copy of the snapshot.
    EXPECT_EQ(ckpt.regionMetrics, base.regionMetrics);
}

TEST(FaultPipeline, RetriesExhaustedDropsRegion)
{
    SimConfig sim;
    sim.faults = FaultPlan::parse("sim:region=0,kind=throw");
    sim.regionRetries = 2;
    auto ckpt = runCheckpointed(sim);
    EXPECT_FALSE(ckpt.regionOutcomes[0].ok);
    EXPECT_EQ(ckpt.regionOutcomes[0].attempts, 3u);
    EXPECT_NE(ckpt.regionOutcomes[0].error.find("injected"),
              std::string::npos);
}

TEST(FaultPipeline, RetryBudgetDoesNotPerturbFaultFreeRuns)
{
    SimConfig clean;
    auto base = runCheckpointed(clean);
    SimConfig sim;
    sim.regionRetries = 2; // forces the pristine-copy path
    auto ckpt = runCheckpointed(sim);
    EXPECT_EQ(ckpt.regionMetrics, base.regionMetrics);
    EXPECT_EQ(ckpt.coverage, 1.0);
}

TEST(FaultPipeline, WatchdogCatchesDivergentRegion)
{
    SimConfig sim;
    sim.faults = FaultPlan::parse("sim:region=0,kind=diverge");
    auto ckpt = runCheckpointed(sim);
    EXPECT_FALSE(ckpt.regionOutcomes[0].ok);
    EXPECT_NE(ckpt.regionOutcomes[0].error.find(
                  "end marker not reached"),
              std::string::npos);
    EXPECT_LT(ckpt.coverage, 1.0);
}

TEST(FaultPipeline, FaultIsolationIsJobsInvariant)
{
    SimConfig serial;
    serial.faults = FaultPlan::parse("sim:region=0,kind=throw");
    serial.jobs = 1;
    auto a = runCheckpointed(serial);

    SimConfig parallel = serial;
    parallel.jobs = 4;
    auto b = runCheckpointed(parallel);

    EXPECT_EQ(a.regionMetrics, b.regionMetrics);
    EXPECT_EQ(a.coverage, b.coverage);
    EXPECT_EQ(a.failedRegions(), b.failedRegions());
}

TEST(FaultPipeline, KilledRunResumesBitIdentical)
{
    const auto &lp = analyzed().lp;
    ASSERT_GE(lp.regions.size(), 2u);

    SimConfig clean;
    clean.jobs = 1;
    auto base = runCheckpointed(clean);

    // Kill the region whose checkpoint is taken last, so (with jobs=1,
    // regions simulated inline in warming order) every other region
    // has already been journaled when the host "dies".
    uint32_t last = 0;
    for (uint32_t i = 0; i < lp.regions.size(); ++i)
        if (lp.regions[i].sliceIndex >
            lp.regions[last].sliceIndex)
            last = i;

    const std::string path = journalPath("killresume");
    {
        RunJournal journal(path, makeKey());
        SimConfig dying = clean;
        dying.faults = FaultPlan::parse(
            "sim:region=" + std::to_string(last) + ",kind=kill");
        EXPECT_THROW(runCheckpointed(dying, &journal), InjectedKill);
    }

    // Resume: the journal satisfies every region but the killed one,
    // and the final results are bit-identical to the uninterrupted
    // run — journal hits still stop the warming pass at their region
    // start, so the simulated trajectory is unchanged.
    RunJournal journal(path, makeKey());
    ASSERT_FALSE(journal.load(/*must_exist=*/true).has_value());
    EXPECT_EQ(journal.size(), lp.regions.size() - 1);

    auto resumed = runCheckpointed(clean, &journal);
    EXPECT_EQ(resumed.journalHits, lp.regions.size() - 1);
    EXPECT_EQ(resumed.coverage, 1.0);
    EXPECT_EQ(resumed.regionMetrics, base.regionMetrics);
    for (uint32_t i = 0; i < lp.regions.size(); ++i) {
        EXPECT_TRUE(resumed.regionOutcomes[i].ok);
        EXPECT_EQ(resumed.regionOutcomes[i].fromJournal, i != last);
    }

    // A second resume now reuses everything.
    RunJournal journal2(path, makeKey());
    ASSERT_FALSE(journal2.load(/*must_exist=*/true).has_value());
    EXPECT_EQ(journal2.size(), lp.regions.size());
    auto full = runCheckpointed(clean, &journal2);
    EXPECT_EQ(full.journalHits, lp.regions.size());
    EXPECT_EQ(full.regionMetrics, base.regionMetrics);
}

TEST(FaultPipeline, InterruptedRunResumesBitIdentical)
{
    // The cooperative-interrupt path (supervisor SIGTERM / ctrl-C):
    // unlike kind=kill, the run parks at a region *boundary* instead
    // of throwing, flags the result as interrupted, and everything
    // already simulated is in the journal for the resume.
    const auto &lp = analyzed().lp;
    ASSERT_GE(lp.regions.size(), 2u);

    SimConfig clean;
    clean.jobs = 1;
    auto base = runCheckpointed(clean);

    uint32_t last = 0;
    for (uint32_t i = 0; i < lp.regions.size(); ++i)
        if (lp.regions[i].sliceIndex > lp.regions[last].sliceIndex)
            last = i;

    const std::string path = journalPath("interruptresume");
    {
        RunJournal journal(path, makeKey());
        SimConfig parked = clean;
        parked.faults = FaultPlan::parse(
            "sim:region=" + std::to_string(last) + ",kind=interrupt");
        auto ckpt = runCheckpointed(parked, &journal);
        clearShutdownRequest();
        EXPECT_TRUE(ckpt.interrupted);
        // Everything before the boundary completed and journaled.
        EXPECT_EQ(journal.size(), lp.regions.size() - 1);
    }

    RunJournal journal(path, makeKey());
    ASSERT_FALSE(journal.load(/*must_exist=*/true).has_value());
    auto resumed = runCheckpointed(clean, &journal);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.journalHits, lp.regions.size() - 1);
    EXPECT_EQ(resumed.coverage, 1.0);
    EXPECT_EQ(resumed.regionMetrics, base.regionMetrics);
}

TEST(FaultPipeline, JournalFromDifferentMicroarchIsNotReused)
{
    // The run key fingerprints the sim config; the pipeline itself
    // only trusts what find() returns, and find() matches on region
    // identity. A journal recorded for this analysis but loaded under
    // a *matching* key with different metrics would be the caller's
    // bug — what the pipeline must guarantee is that an unloaded
    // journal (fresh object, nothing on disk) never produces hits.
    const std::string path = journalPath("fresh");
    RunJournal journal(path, makeKey());
    SimConfig sim;
    sim.jobs = 1;
    auto ckpt = runCheckpointed(sim, &journal);
    EXPECT_EQ(ckpt.journalHits, 0u);
    EXPECT_EQ(journal.size(), analyzed().lp.regions.size());
}

} // namespace
} // namespace looppoint
