/**
 * @file
 * Equivalence tests for the hot-path optimizations: every fast path
 * (shift/mask recency-ordered caches, the event-driven detailed
 * scheduler, dense slice accumulation, devirtualized region stop
 * conditions) is checked bit-identical against its reference
 * implementation — exact equality on every counter and double, never
 * EXPECT_NEAR. Also covers the evicted-line optional at address 0 and
 * a save/load round trip taken while a thread is blocked mid-wait.
 */

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <vector>

#include "core/looppoint.hh"
#include "dcfg/dcfg.hh"
#include "exec/driver.hh"
#include "exec/engine.hh"
#include "isa/program_builder.hh"
#include "profile/slicer.hh"
#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/multicore.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "workload/descriptor.hh"

namespace looppoint {
namespace {

void
expectMetricsIdentical(const SimMetrics &a, const SimMetrics &b,
                       const char *what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.filteredInstructions, b.filteredInstructions) << what;
    EXPECT_EQ(a.runtimeSeconds, b.runtimeSeconds) << what;
    EXPECT_EQ(a.branches, b.branches) << what;
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts) << what;
    EXPECT_EQ(a.l1dAccesses, b.l1dAccesses) << what;
    EXPECT_EQ(a.l1dMisses, b.l1dMisses) << what;
    EXPECT_EQ(a.l2Accesses, b.l2Accesses) << what;
    EXPECT_EQ(a.l2Misses, b.l2Misses) << what;
    EXPECT_EQ(a.l3Accesses, b.l3Accesses) << what;
    EXPECT_EQ(a.l3Misses, b.l3Misses) << what;
}

// ---------------------------------------------------------------------
// Golden metrics: the full pipeline under the reference scan scheduler
// must match the event-driven scheduler bit for bit, at any jobs count.
// ---------------------------------------------------------------------

struct PipelineOutput
{
    LoopPointResult lp;
    LoopPointPipeline::CheckpointedSimResult ckpt;
    MetricPrediction pred;
};

PipelineOutput
runPipeline(const char *app_name, uint32_t jobs, bool reference)
{
    const AppDescriptor &app = findApp(app_name);
    LoopPointOptions opts;
    opts.numThreads = app.effectiveThreads(4);
    opts.sliceSizePerThread = 20'000;
    opts.jobs = jobs;
    Program prog = generateProgram(app, InputClass::Test);
    LoopPointPipeline pipe(prog, opts);

    PipelineOutput out;
    out.lp = pipe.analyze();
    SimConfig sim_cfg;
    sim_cfg.jobs = jobs;
    sim_cfg.referenceScheduler = reference;
    out.ckpt = pipe.simulateRegionsCheckpointed(out.lp, sim_cfg);
    out.pred =
        extrapolateMetrics(out.lp, out.ckpt.regionMetrics, sim_cfg);
    return out;
}

void
expectPipelineIdentical(const PipelineOutput &a, const PipelineOutput &b)
{
    // Slice boundaries and BBVs.
    ASSERT_EQ(a.lp.slices.size(), b.lp.slices.size());
    for (size_t i = 0; i < a.lp.slices.size(); ++i) {
        const SliceRecord &sa = a.lp.slices[i];
        const SliceRecord &sb = b.lp.slices[i];
        EXPECT_EQ(sa.start, sb.start) << "slice " << i;
        EXPECT_EQ(sa.end, sb.end) << "slice " << i;
        EXPECT_EQ(sa.filteredIcount, sb.filteredIcount) << "slice " << i;
        EXPECT_EQ(sa.totalIcount, sb.totalIcount) << "slice " << i;
        EXPECT_EQ(sa.perThread, sb.perThread) << "slice " << i;
    }

    // Clustering and region selection.
    EXPECT_EQ(a.lp.chosenK, b.lp.chosenK);
    EXPECT_EQ(a.lp.assignment, b.lp.assignment);
    ASSERT_EQ(a.lp.regions.size(), b.lp.regions.size());
    for (size_t i = 0; i < a.lp.regions.size(); ++i) {
        EXPECT_EQ(a.lp.regions[i].start, b.lp.regions[i].start);
        EXPECT_EQ(a.lp.regions[i].end, b.lp.regions[i].end);
        EXPECT_EQ(a.lp.regions[i].multiplier,
                  b.lp.regions[i].multiplier);
    }

    // Per-region detailed metrics: every field, exactly.
    ASSERT_EQ(a.ckpt.regionMetrics.size(), b.ckpt.regionMetrics.size());
    for (size_t i = 0; i < a.ckpt.regionMetrics.size(); ++i)
        expectMetricsIdentical(a.ckpt.regionMetrics[i],
                               b.ckpt.regionMetrics[i], "region");

    // Extrapolated prediction: byte-identical doubles.
    EXPECT_EQ(a.pred.runtimeSeconds, b.pred.runtimeSeconds);
    EXPECT_EQ(a.pred.cycles, b.pred.cycles);
    EXPECT_EQ(a.pred.instructions, b.pred.instructions);
    EXPECT_EQ(a.pred.filteredInstructions, b.pred.filteredInstructions);
    EXPECT_EQ(a.pred.branchMispredicts, b.pred.branchMispredicts);
    EXPECT_EQ(a.pred.l1dMisses, b.pred.l1dMisses);
    EXPECT_EQ(a.pred.l2Misses, b.pred.l2Misses);
    EXPECT_EQ(a.pred.l3Misses, b.pred.l3Misses);
}

TEST(HotpathGolden, Pop2ReferenceVsOptimizedJobsOneAndFour)
{
    PipelineOutput ref = runPipeline("628.pop2_s.1", 1, true);
    PipelineOutput opt1 = runPipeline("628.pop2_s.1", 1, false);
    PipelineOutput opt4 = runPipeline("628.pop2_s.1", 4, false);
    expectPipelineIdentical(ref, opt1);
    expectPipelineIdentical(ref, opt4);
}

TEST(HotpathGolden, RomsReferenceVsOptimized)
{
    PipelineOutput ref = runPipeline("654.roms_s.1", 1, true);
    PipelineOutput opt = runPipeline("654.roms_s.1", 4, false);
    expectPipelineIdentical(ref, opt);
}

// ---------------------------------------------------------------------
// Scheduler equivalence at the MulticoreSim level: full runs and
// region runs under both wait policies.
// ---------------------------------------------------------------------

Program
syncHeavyProgram(uint64_t iters, uint64_t timesteps)
{
    ProgramBuilder b("hotpath-test", 23);
    uint32_t k = b.beginKernel("work", SchedPolicy::DynamicFor, iters);
    b.addStream({.footprintBytes = 1 << 18, .strideBytes = 8});
    b.addBlock({.numInstrs = 24, .fracMem = 0.4, .streams = {0}});
    b.addCond({.numInstrs = 6, .streams = {}},
              {.numInstrs = 14, .streams = {0}},
              {.numInstrs = 10, .streams = {0}},
              {.numInstrs = 4, .streams = {}}, 0.4);
    b.addCritical(0, {.numInstrs = 12, .streams = {0}});
    b.endKernel();
    b.runKernels({k}, timesteps);
    return b.build();
}

SimMetrics
runScheduler(const Program &p, WaitPolicy policy, uint32_t threads,
             bool reference)
{
    ExecConfig cfg{.numThreads = threads, .waitPolicy = policy};
    SimConfig sc;
    sc.referenceScheduler = reference;
    return MulticoreSim(p, cfg, sc).run();
}

TEST(HotpathScheduler, FullRunMatchesReferencePassive)
{
    Program p = syncHeavyProgram(96, 3);
    SimMetrics ref = runScheduler(p, WaitPolicy::Passive, 4, true);
    SimMetrics opt = runScheduler(p, WaitPolicy::Passive, 4, false);
    expectMetricsIdentical(ref, opt, "passive full run");
}

TEST(HotpathScheduler, FullRunMatchesReferenceActive)
{
    Program p = syncHeavyProgram(96, 3);
    SimMetrics ref = runScheduler(p, WaitPolicy::Active, 4, true);
    SimMetrics opt = runScheduler(p, WaitPolicy::Active, 4, false);
    expectMetricsIdentical(ref, opt, "active full run");
}

TEST(HotpathScheduler, SingleThreadMatchesReference)
{
    Program p = syncHeavyProgram(64, 2);
    SimMetrics ref = runScheduler(p, WaitPolicy::Passive, 1, true);
    SimMetrics opt = runScheduler(p, WaitPolicy::Passive, 1, false);
    expectMetricsIdentical(ref, opt, "single thread");
}

TEST(HotpathScheduler, RegionRunMatchesReference)
{
    Program p = syncHeavyProgram(256, 3);
    const BlockId wh = p.kernels[0].workerHeader;
    const Addr wh_pc = p.blocks[wh].pc;
    ExecConfig cfg{.numThreads = 4, .waitPolicy = WaitPolicy::Passive};

    SimConfig ref_cfg;
    ref_cfg.referenceScheduler = true;
    SimConfig opt_cfg;

    SimMetrics ref = MulticoreSim(p, cfg, ref_cfg)
                         .runRegion(wh_pc, 256, wh_pc, 640, true);
    SimMetrics opt = MulticoreSim(p, cfg, opt_cfg)
                         .runRegion(wh_pc, 256, wh_pc, 640, true);
    expectMetricsIdentical(ref, opt, "warmed region");
}

// ---------------------------------------------------------------------
// Slicer equivalence: dense epoch-stamped accumulation vs direct
// per-slice hash maps — contents AND iteration order.
// ---------------------------------------------------------------------

Program
profileProgram(uint64_t iters, uint64_t timesteps)
{
    ProgramBuilder b("hotpath-prof", 31);
    uint32_t k = b.beginKernel("work", SchedPolicy::StaticFor, iters);
    b.addStream({.footprintBytes = 1 << 16, .strideBytes = 8});
    b.addBlock({.numInstrs = 30, .fracMem = 0.3, .streams = {0}});
    b.addCond({.numInstrs = 8, .streams = {}},
              {.numInstrs = 12, .streams = {0}},
              {.numInstrs = 9, .streams = {0}},
              {.numInstrs = 5, .streams = {}}, 0.3);
    b.endKernel();
    b.runKernels({k}, timesteps);
    return b.build();
}

std::vector<SliceRecord>
profileSlices(const Program &p, uint32_t threads, uint64_t slice_size,
              bool reference_accumulation)
{
    ExecConfig mcfg{.numThreads = threads,
                    .waitPolicy = WaitPolicy::Passive};
    ExecutionEngine me(p, mcfg);
    DcfgBuilder builder(p, threads);
    RoundRobinDriver md(me, 200);
    md.run(&builder);
    auto markers = builder.build().mainImageLoopHeaders();

    ExecConfig cfg{.numThreads = threads,
                   .waitPolicy = WaitPolicy::Passive};
    ExecutionEngine e(p, cfg);
    SliceProfiler profiler(p, markers, slice_size, threads,
                           /*filter_sync=*/true, reference_accumulation);
    RoundRobinDriver d(e, 200);
    d.run(&profiler);
    profiler.finalize();
    return profiler.slices();
}

TEST(HotpathSlicer, DenseAccumulationMatchesReference)
{
    Program p = profileProgram(300, 4);
    auto ref = profileSlices(p, 4, 5'000, true);
    auto fast = profileSlices(p, 4, 5'000, false);

    ASSERT_EQ(ref.size(), fast.size());
    ASSERT_GT(ref.size(), 1u);
    for (size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(ref[i].start, fast[i].start) << "slice " << i;
        EXPECT_EQ(ref[i].end, fast[i].end) << "slice " << i;
        EXPECT_EQ(ref[i].filteredIcount, fast[i].filteredIcount);
        EXPECT_EQ(ref[i].totalIcount, fast[i].totalIcount);
        EXPECT_EQ(ref[i].threadFilteredIcount,
                  fast[i].threadFilteredIcount);
        ASSERT_EQ(ref[i].perThread.size(), fast[i].perThread.size());
        for (size_t t = 0; t < ref[i].perThread.size(); ++t) {
            // Same contents...
            EXPECT_EQ(ref[i].perThread[t], fast[i].perThread[t])
                << "slice " << i << " thread " << t;
            // ...and the same hash-map iteration order. Downstream
            // feature projection sums doubles in iteration order, so
            // order equality is what makes the fast path bit-identical
            // end to end, not just count-equal.
            std::vector<BlockId> ref_order, fast_order;
            for (const auto &[b, n] : ref[i].perThread[t].counts)
                ref_order.push_back(b);
            for (const auto &[b, n] : fast[i].perThread[t].counts)
                fast_order.push_back(b);
            EXPECT_EQ(ref_order, fast_order)
                << "slice " << i << " thread " << t;
        }
    }
}

// ---------------------------------------------------------------------
// Cache property test: the shift/mask, recency-ordered cache against
// a straightforward modulo-indexed timestamp-LRU reference model.
// ---------------------------------------------------------------------

/** Textbook set-associative LRU: modulo set index, timestamp scan. */
class RefLruCache
{
  public:
    explicit RefLruCache(const CacheConfig &cfg_)
        : cfg(cfg_), numSets(cfg.sizeBytes / (cfg.lineBytes * cfg.assoc)),
          lines(static_cast<size_t>(numSets) * cfg.assoc)
    {}

    bool
    access(Addr addr, uint32_t core, std::optional<Addr> *evicted)
    {
        ++accesses;
        const uint64_t line = addr / cfg.lineBytes;
        Line *s = setOf(line);
        for (uint32_t w = 0; w < cfg.assoc; ++w) {
            if (s[w].valid && s[w].tag == line) {
                s[w].lru = ++clock;
                s[w].sharers |= (1ull << core);
                return true;
            }
        }
        ++misses;
        uint32_t victim = cfg.assoc;
        for (uint32_t w = 0; w < cfg.assoc; ++w) {
            if (!s[w].valid) {
                victim = w;
                break;
            }
        }
        if (victim == cfg.assoc) {
            victim = 0;
            for (uint32_t w = 1; w < cfg.assoc; ++w)
                if (s[w].lru < s[victim].lru)
                    victim = w;
            if (evicted)
                *evicted = s[victim].tag * cfg.lineBytes;
        }
        s[victim] = Line{line, ++clock, 1ull << core, true};
        return false;
    }

    std::optional<Addr>
    fill(Addr addr, uint32_t core)
    {
        const uint64_t line = addr / cfg.lineBytes;
        Line *s = setOf(line);
        for (uint32_t w = 0; w < cfg.assoc; ++w) {
            if (s[w].valid && s[w].tag == line) {
                s[w].sharers |= (1ull << core);
                return std::nullopt;
            }
        }
        std::optional<Addr> evicted;
        uint32_t victim = cfg.assoc;
        for (uint32_t w = 0; w < cfg.assoc; ++w) {
            if (!s[w].valid) {
                victim = w;
                break;
            }
        }
        if (victim == cfg.assoc) {
            victim = 0;
            for (uint32_t w = 1; w < cfg.assoc; ++w)
                if (s[w].lru < s[victim].lru)
                    victim = w;
            evicted = s[victim].tag * cfg.lineBytes;
        }
        s[victim] = Line{line, ++clock, 1ull << core, true};
        return evicted;
    }

    bool
    invalidate(Addr addr)
    {
        const uint64_t line = addr / cfg.lineBytes;
        Line *s = setOf(line);
        for (uint32_t w = 0; w < cfg.assoc; ++w) {
            if (s[w].valid && s[w].tag == line) {
                s[w] = Line{};
                ++invalidations;
                return true;
            }
        }
        return false;
    }

    bool
    contains(Addr addr) const
    {
        const uint64_t line = addr / cfg.lineBytes;
        const Line *s = setOf(line);
        for (uint32_t w = 0; w < cfg.assoc; ++w)
            if (s[w].valid && s[w].tag == line)
                return true;
        return false;
    }

    uint64_t
    sharers(Addr addr) const
    {
        const uint64_t line = addr / cfg.lineBytes;
        const Line *s = setOf(line);
        for (uint32_t w = 0; w < cfg.assoc; ++w)
            if (s[w].valid && s[w].tag == line)
                return s[w].sharers;
        return 0;
    }

    uint64_t accesses = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint64_t lru = 0;
        uint64_t sharers = 0;
        bool valid = false;
    };

    Line *setOf(uint64_t line)
    {
        return &lines[static_cast<size_t>(line % numSets) * cfg.assoc];
    }
    const Line *setOf(uint64_t line) const
    {
        return &lines[static_cast<size_t>(line % numSets) * cfg.assoc];
    }

    CacheConfig cfg;
    uint32_t numSets;
    std::vector<Line> lines;
    uint64_t clock = 0;
};

TEST(HotpathCache, PropertyMatchesReferenceLru)
{
    // Small geometry so sets fill and evict constantly: 4 sets, 4-way.
    // The address pool spans 32 distinct lines (8 lines per set) and
    // includes line 0, so the evicted-optional-at-address-0 case is
    // exercised, not just constructed.
    const CacheConfig geo{1024, 4, 64, 1};
    Cache opt(geo);
    RefLruCache ref(geo);
    Rng rng(12345);

    for (int step = 0; step < 20'000; ++step) {
        const Addr addr = rng.nextBounded(32) * 64 + rng.nextBounded(64);
        const uint32_t core = static_cast<uint32_t>(rng.nextBounded(4));
        const uint64_t op = rng.nextBounded(10);
        if (op < 7) {
            std::optional<Addr> ev_opt, ev_ref;
            const bool is_write = rng.nextBounded(2) != 0;
            const bool hit_opt = opt.access(addr, core, is_write, &ev_opt);
            const bool hit_ref = ref.access(addr, core, &ev_ref);
            ASSERT_EQ(hit_opt, hit_ref) << "step " << step;
            ASSERT_EQ(ev_opt.has_value(), ev_ref.has_value())
                << "step " << step;
            if (ev_opt) {
                ASSERT_EQ(*ev_opt, *ev_ref) << "step " << step;
            }
        } else if (op < 8) {
            ASSERT_EQ(opt.fill(addr, core), ref.fill(addr, core))
                << "step " << step;
        } else if (op < 9) {
            ASSERT_EQ(opt.invalidate(addr), ref.invalidate(addr))
                << "step " << step;
        } else {
            ASSERT_EQ(opt.contains(addr), ref.contains(addr))
                << "step " << step;
            ASSERT_EQ(opt.sharers(addr), ref.sharers(addr))
                << "step " << step;
        }
    }
    EXPECT_EQ(opt.stats().accesses, ref.accesses);
    EXPECT_EQ(opt.stats().misses, ref.misses);
    EXPECT_EQ(opt.stats().invalidations, ref.invalidations);
}

TEST(HotpathCache, EvictedOptionalDisambiguatesLineZero)
{
    // One set, two ways: lines 0x0, 0x40, 0x80 all collide. Evicting
    // the line at address 0 must yield an *engaged* optional holding 0,
    // distinguishable from "nothing evicted".
    Cache c(CacheConfig{128, 2, 64, 1});
    EXPECT_FALSE(c.access(0x00, 0, false, nullptr));
    EXPECT_FALSE(c.access(0x40, 0, false, nullptr));

    std::optional<Addr> evicted;
    EXPECT_FALSE(c.access(0x80, 0, false, &evicted));
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 0u);
    EXPECT_FALSE(c.contains(0x00));

    // Same through the prefetch-fill path.
    Cache f(CacheConfig{128, 2, 64, 1});
    EXPECT_FALSE(f.fill(0x00, 0).has_value()); // invalid way: no victim
    EXPECT_FALSE(f.fill(0x40, 0).has_value());
    EXPECT_FALSE(f.fill(0x40, 1).has_value()); // resident: no victim
    std::optional<Addr> ev = f.fill(0x80, 0);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(*ev, 0u);
    EXPECT_FALSE(f.contains(0x00));
}

// ---------------------------------------------------------------------
// Checkpoint round trip while a thread is blocked mid-wait.
// ---------------------------------------------------------------------

/** Per-thread executed-block streams. */
class BlockCollector : public ExecListener
{
  public:
    explicit BlockCollector(uint32_t num_threads) : streams(num_threads)
    {}

    void
    onBlock(uint32_t tid, BlockId block,
            const ExecutionEngine &engine) override
    {
        (void)engine;
        streams[tid].push_back(block);
    }

    std::vector<std::vector<BlockId>> streams;
};

TEST(HotpathCheckpoint, SaveLoadWhileBlockedMidWait)
{
    // Critical sections + end-of-kernel barriers under the passive
    // policy guarantee threads genuinely block (step() == Blocked).
    Program p = syncHeavyProgram(64, 3);
    const uint32_t threads = 4;
    ExecConfig cfg{.numThreads = threads,
                   .waitPolicy = WaitPolicy::Passive};
    ExecutionEngine e(p, cfg);

    // Step round-robin until some thread reports Blocked — it is then
    // parked on a lock or barrier, the state the checkpoint must
    // capture (wait kind, wake bookkeeping, partial barrier arrivals).
    bool blocked = false;
    for (int round = 0; round < 100'000 && !blocked; ++round) {
        for (uint32_t tid = 0; tid < threads; ++tid) {
            if (e.finished(tid))
                continue;
            if (e.step(tid).kind == StepResult::Kind::Blocked) {
                blocked = true;
                break;
            }
        }
        ASSERT_FALSE(e.allFinished())
            << "program ended before any thread blocked";
    }
    ASSERT_TRUE(blocked);

    std::stringstream ss;
    e.save(ss);
    ExecutionEngine restored = ExecutionEngine::load(ss, p);

    // Both engines must now produce the same continuation under the
    // same schedule: identical per-thread block streams and counters.
    BlockCollector ce(threads), cr(threads);
    RoundRobinDriver de(e, 200);
    de.run(&ce);
    RoundRobinDriver dr(restored, 200);
    dr.run(&cr);

    EXPECT_TRUE(e.allFinished());
    EXPECT_TRUE(restored.allFinished());
    EXPECT_EQ(ce.streams, cr.streams);
    EXPECT_EQ(e.globalIcount(), restored.globalIcount());
    EXPECT_EQ(e.globalFilteredIcount(),
              restored.globalFilteredIcount());
    for (uint32_t tid = 0; tid < threads; ++tid) {
        EXPECT_EQ(e.icount(tid), restored.icount(tid)) << tid;
        EXPECT_EQ(e.filteredIcount(tid), restored.filteredIcount(tid))
            << tid;
    }
    for (BlockId b = 0; b < p.numBlocks(); ++b)
        EXPECT_EQ(e.blockExecCount(b), restored.blockExecCount(b)) << b;
}

} // namespace
} // namespace looppoint
