/**
 * @file
 * Tests for k-means, BIC model selection, representatives, and the
 * random projection.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/kmeans.hh"
#include "util/logging.hh"

namespace looppoint {
namespace {

/** Three well-separated Gaussian blobs in 2-D. */
FeatureMatrix
makeBlobs(size_t per_blob, uint64_t seed)
{
    Rng rng(seed);
    FeatureMatrix points;
    const double centers[3][2] = {{0, 0}, {10, 10}, {-10, 12}};
    for (int b = 0; b < 3; ++b)
        for (size_t i = 0; i < per_blob; ++i)
            points.push_back({centers[b][0] + rng.nextGaussian() * 0.5,
                              centers[b][1] + rng.nextGaussian() * 0.5});
    return points;
}

TEST(Kmeans, RecoversBlobs)
{
    FeatureMatrix points = makeBlobs(30, 5);
    Rng rng(9);
    KmeansResult r = kmeans(points, 3, rng);
    EXPECT_EQ(r.k, 3u);
    // All points of one blob share a cluster.
    for (int b = 0; b < 3; ++b) {
        uint32_t c = r.assignment[b * 30];
        for (size_t i = 0; i < 30; ++i)
            EXPECT_EQ(r.assignment[b * 30 + i], c);
    }
    // Distinct blobs get distinct clusters.
    EXPECT_NE(r.assignment[0], r.assignment[30]);
    EXPECT_NE(r.assignment[30], r.assignment[60]);
    EXPECT_LT(r.distortion, 90 * 1.0);
}

TEST(Kmeans, DeterministicForSameRngSeed)
{
    FeatureMatrix points = makeBlobs(20, 7);
    Rng r1(3), r2(3);
    KmeansResult a = kmeans(points, 4, r1);
    KmeansResult b = kmeans(points, 4, r2);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_DOUBLE_EQ(a.distortion, b.distortion);
}

TEST(Kmeans, KEqualsNGivesZeroDistortion)
{
    FeatureMatrix points{{0, 0}, {5, 5}, {9, 1}};
    Rng rng(1);
    KmeansResult r = kmeans(points, 3, rng);
    EXPECT_NEAR(r.distortion, 0.0, 1e-12);
}

TEST(Kmeans, RejectsBadK)
{
    FeatureMatrix points{{0, 0}, {1, 1}};
    Rng rng(1);
    EXPECT_THROW(kmeans(points, 0, rng), FatalError);
    EXPECT_THROW(kmeans(points, 3, rng), FatalError);
    EXPECT_THROW(kmeans({}, 1, rng), FatalError);
}

TEST(Kmeans, HandlesIdenticalPoints)
{
    FeatureMatrix points(10, std::vector<double>{1.0, 2.0});
    Rng rng(2);
    KmeansResult r = kmeans(points, 2, rng);
    EXPECT_NEAR(r.distortion, 0.0, 1e-12);
}

TEST(Bic, PrefersTrueK)
{
    FeatureMatrix points = makeBlobs(40, 11);
    double bic1, bic3, bic7;
    {
        Rng rng(4);
        bic1 = bicScore(points, kmeans(points, 1, rng));
    }
    {
        Rng rng(4);
        bic3 = bicScore(points, kmeans(points, 3, rng));
    }
    {
        Rng rng(4);
        bic7 = bicScore(points, kmeans(points, 7, rng));
    }
    EXPECT_GT(bic3, bic1);
    // BIC's parameter penalty keeps k=7 from dominating k=3.
    EXPECT_GT(bic3, bic7 - std::fabs(bic7) * 0.05);
}

TEST(SimpointCluster, ChoosesNearTrueK)
{
    FeatureMatrix points = makeBlobs(40, 13);
    ClusteringResult r = simpointCluster(points, 20, 99);
    EXPECT_GE(r.chosenK, 3u);
    EXPECT_LE(r.chosenK, 6u);
    EXPECT_EQ(r.best.assignment.size(), points.size());
}

TEST(SimpointCluster, ClampsKToPointCount)
{
    FeatureMatrix points{{0, 0}, {10, 10}};
    ClusteringResult r = simpointCluster(points, 50, 1);
    EXPECT_LE(r.chosenK, 2u);
}

TEST(SimpointCluster, ScansCoarselyAboveSixteen)
{
    FeatureMatrix points = makeBlobs(30, 17); // 90 points
    ClusteringResult r = simpointCluster(points, 50, 21);
    // k=1..16 all scanned, then steps; far fewer than 50 runs. The
    // scan is capped at n/2 = 45 to avoid degenerate clusterings.
    EXPECT_LT(r.bicByK.size(), 35u);
    EXPECT_EQ(r.bicByK.front().first, 1u);
    EXPECT_EQ(r.bicByK.back().first, 45u);
}

TEST(Representatives, ClosestToCentroid)
{
    FeatureMatrix points = makeBlobs(25, 19);
    Rng rng(6);
    KmeansResult km = kmeans(points, 3, rng);
    auto reps = pickRepresentatives(points, km);
    ASSERT_EQ(reps.size(), 3u);
    for (uint32_t c = 0; c < 3; ++c) {
        // The representative belongs to its own cluster.
        EXPECT_EQ(km.assignment[reps[c]], c);
    }
}

TEST(RandomProjector, DeterministicAndLinear)
{
    RandomProjector proj(16, 77);
    std::vector<std::pair<uint64_t, double>> row{{5, 1.0}, {900, 2.0}};
    auto a = proj.project(row);
    auto b = proj.project(row);
    EXPECT_EQ(a, b);

    // Linearity: project(2x) == 2 * project(x).
    std::vector<std::pair<uint64_t, double>> row2{{5, 2.0}, {900, 4.0}};
    auto c = proj.project(row2);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(c[i], 2.0 * a[i], 1e-12);
}

TEST(RandomProjector, SeparatesDistinctRows)
{
    RandomProjector proj(32, 88);
    auto a = proj.project({{1, 1.0}});
    auto b = proj.project({{2, 1.0}});
    double dist = 0;
    for (size_t i = 0; i < a.size(); ++i)
        dist += (a[i] - b[i]) * (a[i] - b[i]);
    EXPECT_GT(dist, 1.0);
}

TEST(RandomProjector, DifferentSeedsDiffer)
{
    RandomProjector p1(8, 1), p2(8, 2);
    auto a = p1.project({{42, 1.0}});
    auto b = p2.project({{42, 1.0}});
    EXPECT_NE(a, b);
}

} // namespace
} // namespace looppoint
