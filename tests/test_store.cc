/**
 * @file
 * Artifact-store tests: the SHA-1 / fingerprint primitives, the
 * content-addressed store (roundtrip, dedup, corrupt-entry eviction,
 * LRU GC, cross-instance persistence), the stage-key partition (which
 * config fields invalidate which stage — the contract the whole
 * memoization design rests on), and the end-to-end property: a warm
 * rerun is served entirely from the store bit-identically, including
 * after an artifact has been corrupted on disk.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>
#include <utime.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/run_journal.hh"
#include "store/artifact_store.hh"
#include "store/stage_cache.hh"
#include "util/fingerprint.hh"
#include "util/sha1.hh"
#include "workload/descriptor.hh"

namespace looppoint {
namespace {

/** Fresh, empty store directory under the test tmpdir. */
std::string
freshStoreDir(const std::string &name)
{
    std::string dir = testing::TempDir() + "lp_store_" + name;
    std::string cmd = "rm -rf '" + dir + "'";
    EXPECT_EQ(std::system(cmd.c_str()), 0);
    return dir;
}

TEST(Sha1, KnownVectors)
{
    EXPECT_EQ(sha1Hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    EXPECT_EQ(sha1Hex("abc"),
              "a9993e364706816aba3e25717850c26c9cd0d89d");
    EXPECT_EQ(sha1Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlm"
                      "nomnopnopq"),
              "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
    EXPECT_EQ(sha1Hex(std::string(1'000'000, 'a')),
              "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot)
{
    std::string payload;
    for (int i = 0; i < 1000; ++i)
        payload += "chunk-" + std::to_string(i) + ";";
    Sha1 h;
    // Deliberately awkward chunk boundaries around the 64-byte block.
    size_t pos = 0;
    size_t step = 1;
    while (pos < payload.size()) {
        size_t n = std::min(step, payload.size() - pos);
        h.update(std::string_view(payload).substr(pos, n));
        pos += n;
        step = step * 7 % 129 + 1;
    }
    EXPECT_EQ(h.hex(), sha1Hex(payload));
}

TEST(Fingerprint, CanonicalTextAndSanitization)
{
    std::string text = FingerprintBuilder("stage-v1")
                           .field("name", "a b\tc\nd")
                           .field("n", uint64_t{42})
                           .field("flag", true)
                           .fieldDouble("x", 0.1)
                           .text();
    // Values are whitespace-sanitized so the manifest's line format
    // can never be split by a key.
    EXPECT_EQ(text, "stage-v1;name=a_b_c_d;n=42;flag=1;"
                    "x=0.10000000000000001;");
    EXPECT_EQ(FingerprintBuilder("stage-v1").text(), "stage-v1;");
}

// ------------------------------------------------------------- store

TEST(ArtifactStore, RoundtripAndPersistence)
{
    std::string dir = freshStoreDir("roundtrip");
    std::string hash;
    {
        ArtifactStore store(dir);
        EXPECT_FALSE(store.lookup("record", "k1"));
        EXPECT_EQ(store.stats().misses, 1u);
        hash = store.publish("record", "k1", "payload-one");
        EXPECT_EQ(hash, sha1Hex("payload-one"));
        auto hit = store.lookup("record", "k1");
        ASSERT_TRUE(hit);
        EXPECT_EQ(hit->payload, "payload-one");
        EXPECT_EQ(hit->hash, hash);
    }
    // A second instance (fresh process, conceptually) sees the same
    // binding: the manifest and objects live on disk.
    ArtifactStore store2(dir);
    auto hit = store2.lookup("record", "k1");
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit->payload, "payload-one");
    EXPECT_EQ(store2.hashFor("record", "k1"), hash);
    ASSERT_EQ(store2.entries().size(), 1u);
    EXPECT_EQ(store2.entries()[0].stage, "record");
    EXPECT_EQ(store2.verify(), 0u);
}

TEST(ArtifactStore, DeduplicatesIdenticalContent)
{
    std::string dir = freshStoreDir("dedup");
    ArtifactStore store(dir);
    std::string h1 = store.publish("profile", "keyA", "same-bytes");
    uint64_t stored_after_first = store.stats().bytesStored;
    EXPECT_GT(stored_after_first, 0u);
    std::string h2 = store.publish("profile", "keyB", "same-bytes");
    EXPECT_EQ(h1, h2);
    // Second publish wrote nothing new, only a manifest binding.
    EXPECT_EQ(store.stats().bytesStored, stored_after_first);
    EXPECT_EQ(store.stats().bytesDeduped,
              std::string("same-bytes").size());
    ASSERT_EQ(store.entries().size(), 2u);
}

TEST(ArtifactStore, CorruptObjectEvictedAndRecomputable)
{
    std::string dir = freshStoreDir("corrupt");
    ArtifactStore store(dir);
    std::string hash = store.publish("cluster", "k", "precious-data");

    // Flip one byte in the object payload on disk.
    std::string obj = dir + "/objects/" + hash;
    {
        std::fstream f(obj,
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekp(-3, std::ios::end);
        f.put('X');
    }

    // The lookup detects the damage, evicts, and reports a miss...
    EXPECT_FALSE(store.lookup("cluster", "k"));
    EXPECT_EQ(store.stats().corruptEntries, 1u);
    EXPECT_FALSE(store.hashFor("cluster", "k"));
    struct stat st;
    EXPECT_NE(stat(obj.c_str(), &st), 0) << "object not unlinked";

    // ...and the caller's recompute-republish makes it whole again.
    store.publish("cluster", "k", "precious-data");
    auto hit = store.lookup("cluster", "k");
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit->payload, "precious-data");
    EXPECT_EQ(store.verify(), 0u);
}

TEST(ArtifactStore, FailedPublishIsLoggedMissNotFatal)
{
    std::string dir = freshStoreDir("failed_publish");
    ArtifactStore store(dir);

    // Make object writes impossible in a uid-independent way (tests
    // may run as root, where chmod 0500 would not bite): replace the
    // objects/ directory with a regular file, so opening
    // objects/<hash>.tmp.<pid> fails with ENOTDIR — the same code
    // path ENOSPC and short writes take.
    std::string objects = dir + "/objects";
    ASSERT_EQ(std::system(("rm -rf '" + objects + "'").c_str()), 0);
    { std::ofstream block(objects); ASSERT_TRUE(block.good()); }

    // The publish degrades to a logged miss: hash still returned (the
    // key chain downstream stays valid), nothing bound, run continues.
    std::string hash = store.publish("record", "k", "unstorable");
    EXPECT_EQ(hash, sha1Hex("unstorable"));
    EXPECT_EQ(store.stats().failedPublishes, 1u);
    EXPECT_EQ(store.stats().publishes, 0u);
    EXPECT_EQ(store.stats().bytesStored, 0u);
    EXPECT_FALSE(store.hashFor("record", "k"));
    EXPECT_FALSE(store.lookup("record", "k"));

    // Once the disk recovers, the recompute-republish path heals.
    ASSERT_EQ(std::remove(objects.c_str()), 0);
    ASSERT_EQ(mkdir(objects.c_str(), 0755), 0);
    store.publish("record", "k", "unstorable");
    EXPECT_EQ(store.stats().publishes, 1u);
    auto hit = store.lookup("record", "k");
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit->payload, "unstorable");
    EXPECT_EQ(store.verify(), 0u);
}

TEST(ArtifactStore, CorruptionEvictsEveryBindingOfTheHash)
{
    std::string dir = freshStoreDir("corrupt_shared");
    ArtifactStore store(dir);
    std::string hash = store.publish("record", "kA", "shared");
    store.publish("record", "kB", "shared"); // same object
    {
        std::fstream f(dir + "/objects/" + hash,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(-1, std::ios::end);
        f.put('?');
    }
    EXPECT_FALSE(store.lookup("record", "kA"));
    // The object is gone, so the sibling binding must be gone too —
    // a dangling manifest entry would turn into an I/O error later.
    EXPECT_TRUE(store.entries().empty());
}

TEST(ArtifactStore, GcEvictsLeastRecentlyUsedFirst)
{
    std::string dir = freshStoreDir("gc");
    ArtifactStore store(dir);
    std::string h_old = store.publish("record", "old", "old-payload");
    std::string h_new = store.publish("record", "new", "new-payload!");

    // Backdate the old object; lookups refresh mtime, so touch "new"
    // through the API like a real reuse would.
    struct utimbuf ancient{1000000, 1000000};
    ASSERT_EQ(utime((dir + "/objects/" + h_old).c_str(), &ancient), 0);
    ASSERT_TRUE(store.lookup("record", "new"));

    auto dry = store.gc(1, /*dry_run=*/true);
    EXPECT_EQ(dry.removedObjects, 2u);
    EXPECT_EQ(store.entries().size(), 2u) << "dry run must not evict";

    // Budget for one object: the stale one goes, the fresh one stays.
    struct stat st;
    ASSERT_EQ(stat((dir + "/objects/" + h_new).c_str(), &st), 0);
    auto r = store.gc(static_cast<uint64_t>(st.st_size));
    EXPECT_EQ(r.removedObjects, 1u);
    EXPECT_EQ(r.keptObjects, 1u);
    EXPECT_EQ(r.droppedEntries, 1u);
    EXPECT_FALSE(store.lookup("record", "old"));
    EXPECT_TRUE(store.lookup("record", "new"));
}

TEST(ArtifactStore, GcCollectsOrphanObjectsAndTmpFiles)
{
    std::string dir = freshStoreDir("gc_orphan");
    ArtifactStore store(dir);
    store.publish("record", "live", "live-payload");
    // An orphan object (no manifest binding) and a torn tmp file, as a
    // crash mid-publish would leave behind.
    std::ofstream(dir + "/objects/" + std::string(40, '0'))
        << "orphan-bytes";
    std::ofstream(dir + "/objects/deadbeef.tmp.1234") << "torn";

    auto r = store.gc(UINT64_MAX);
    EXPECT_EQ(r.removedObjects, 1u); // the orphan
    EXPECT_EQ(r.keptObjects, 1u);
    EXPECT_TRUE(store.lookup("record", "live"));
    struct stat st;
    EXPECT_NE(stat((dir + "/objects/deadbeef.tmp.1234").c_str(), &st),
              0);
}

// ----------------------------------------------- key partition tables

LoopPointOptions
baseOpts()
{
    LoopPointOptions o;
    o.numThreads = 4;
    o.sliceSizePerThread = 25'000;
    return o;
}

/**
 * The uarch partition: every result-affecting SimConfig field must
 * change uarchKeyText(); every host-side knob must not. This is the
 * table that pins the fix for the historical journal-fingerprint gap
 * (describe() missed prefetchDegree and the op latencies).
 */
TEST(StageKeys, UarchPartitionCoversEveryResultAffectingField)
{
    const std::string base = SimConfig().uarchKeyText();

    const std::vector<std::pair<const char *,
                                void (*)(SimConfig &)>> uarch_fields = {
        {"coreType",
         [](SimConfig &c) { c.coreType = CoreType::InOrder; }},
        {"freqGHz", [](SimConfig &c) { c.freqGHz = 3.0; }},
        {"robSize", [](SimConfig &c) { c.robSize = 64; }},
        {"dispatchWidth", [](SimConfig &c) { c.dispatchWidth = 2; }},
        {"branchMispredictPenalty",
         [](SimConfig &c) { c.branchMispredictPenalty = 20; }},
        {"prefetchDegree", [](SimConfig &c) { c.prefetchDegree = 2; }},
        {"l1i.sizeBytes",
         [](SimConfig &c) { c.l1i.sizeBytes *= 2; }},
        {"l1d.assoc", [](SimConfig &c) { c.l1d.assoc = 4; }},
        {"l2.sizeBytes", [](SimConfig &c) { c.l2.sizeBytes *= 4; }},
        {"l2.latency", [](SimConfig &c) { c.l2.latency = 12; }},
        {"l3.lineBytes", [](SimConfig &c) { c.l3.lineBytes = 128; }},
        {"memLatency", [](SimConfig &c) { c.memLatency = 300; }},
        {"latIntAlu", [](SimConfig &c) { c.latIntAlu = 2; }},
        {"latIntMul", [](SimConfig &c) { c.latIntMul = 4; }},
        {"latIntDiv", [](SimConfig &c) { c.latIntDiv = 40; }},
        {"latFpAdd", [](SimConfig &c) { c.latFpAdd = 4; }},
        {"latFpMul", [](SimConfig &c) { c.latFpMul = 6; }},
        {"latFpDiv", [](SimConfig &c) { c.latFpDiv = 30; }},
        {"latBranch", [](SimConfig &c) { c.latBranch = 2; }},
        {"latAtomicExtra",
         [](SimConfig &c) { c.latAtomicExtra = 20; }},
    };
    for (const auto &[name, mutate] : uarch_fields) {
        SimConfig c;
        mutate(c);
        EXPECT_NE(c.uarchKeyText(), base)
            << name << " must re-key the simulation stages";
    }

    const std::vector<std::pair<const char *,
                                void (*)(SimConfig &)>> host_knobs = {
        {"jobs", [](SimConfig &c) { c.jobs = 16; }},
        {"backend",
         [](SimConfig &c) { c.backend = ExecBackendKind::Procs; }},
        {"workerTimeoutSeconds",
         [](SimConfig &c) { c.workerTimeoutSeconds = 5.0; }},
        {"referenceScheduler",
         [](SimConfig &c) { c.referenceScheduler = true; }},
        {"obs.trace", [](SimConfig &c) { c.obs.trace = true; }},
        {"obs.metrics", [](SimConfig &c) { c.obs.metrics = true; }},
        {"analysis.lint",
         [](SimConfig &c) { c.analysis.lint = true; }},
        {"analysis.raceCheck",
         [](SimConfig &c) { c.analysis.raceCheck = true; }},
        {"regionRetries", [](SimConfig &c) { c.regionRetries = 3; }},
        {"watchdogFactor", [](SimConfig &c) { c.watchdogFactor = 8; }},
        {"faults",
         [](SimConfig &c) {
             c.faults = FaultPlan::parse("sim:region=0,kind=throw");
         }},
    };
    for (const auto &[name, mutate] : host_knobs) {
        SimConfig c;
        mutate(c);
        EXPECT_EQ(c.uarchKeyText(), base)
            << name << " is host-side and must never invalidate "
                       "cached results";
    }
}

/**
 * Stage-level invalidation: which knob re-keys which stage. The
 * chained-hash design makes downstream invalidation transitive, so
 * this table only needs to pin the *direct* inputs of each key.
 */
TEST(StageKeys, InvalidationTable)
{
    LoopPointOptions o = baseOpts();
    SimConfig sim;
    const std::string rec = StageCache::recordKey("app.test", o);
    const std::string prof = StageCache::profileKey("HASH_R", o);
    const std::string clus = StageCache::clusterKey("HASH_P", o);
    const std::string simk = StageCache::simKey("HASH_C", sim, false);

    // Input/app change: the workload name is in the record key, and
    // everything downstream chains on the record hash.
    EXPECT_NE(StageCache::recordKey("app.train", o), rec);
    EXPECT_NE(StageCache::recordKey("other.test", o), rec);

    // A uarch change re-keys ONLY the simulation stages.
    SimConfig big_l2;
    applyUarchPreset(big_l2, "big-l2");
    EXPECT_NE(StageCache::simKey("HASH_C", big_l2, false), simk);
    EXPECT_NE(StageCache::fullSimKey("app.test", 4,
                                     WaitPolicy::Passive, 42, big_l2),
              StageCache::fullSimKey("app.test", 4,
                                     WaitPolicy::Passive, 42, sim));
    // (recordKey/profileKey/clusterKey take no SimConfig at all: the
    // type system already guarantees uarch cannot reach them.)

    // Constrained mode changes replay semantics: sim key only.
    EXPECT_NE(StageCache::simKey("HASH_C", sim, true), simk);

    // Thread count / wait policy / seed / quantum: recording inputs.
    {
        LoopPointOptions m = o;
        m.numThreads = 8;
        EXPECT_NE(StageCache::recordKey("app.test", m), rec);
        m = o;
        m.waitPolicy = WaitPolicy::Active;
        EXPECT_NE(StageCache::recordKey("app.test", m), rec);
        m = o;
        m.seed = 7;
        EXPECT_NE(StageCache::recordKey("app.test", m), rec);
        m = o;
        m.flowQuantum = 500;
        EXPECT_NE(StageCache::recordKey("app.test", m), rec);
    }

    // Slice size / spin filter: profile inputs, not recording inputs.
    {
        LoopPointOptions m = o;
        m.sliceSizePerThread = 50'000;
        EXPECT_EQ(StageCache::recordKey("app.test", m), rec);
        EXPECT_NE(StageCache::profileKey("HASH_R", m), prof);
        m = o;
        m.filterSpin = false;
        EXPECT_EQ(StageCache::recordKey("app.test", m), rec);
        EXPECT_NE(StageCache::profileKey("HASH_R", m), prof);
    }

    // Clustering knobs: cluster inputs only.
    {
        LoopPointOptions m = o;
        m.maxK = 10;
        EXPECT_EQ(StageCache::recordKey("app.test", m), rec);
        EXPECT_EQ(StageCache::profileKey("HASH_R", m), prof);
        EXPECT_NE(StageCache::clusterKey("HASH_P", m), clus);
        m = o;
        m.projectionDims = 32;
        EXPECT_NE(StageCache::clusterKey("HASH_P", m), clus);
        m = o;
        m.bicThreshold = 0.5;
        EXPECT_NE(StageCache::clusterKey("HASH_P", m), clus);
    }

    // Host-side knobs: NO key anywhere.
    {
        LoopPointOptions m = o;
        m.jobs = 32;
        m.analysis.lint = true;
        m.analysis.raceCheck = true;
        EXPECT_EQ(StageCache::recordKey("app.test", m), rec);
        EXPECT_EQ(StageCache::profileKey("HASH_R", m), prof);
        EXPECT_EQ(StageCache::clusterKey("HASH_P", m), clus);
        SimConfig host = sim;
        host.jobs = 32;
        host.backend = ExecBackendKind::Procs;
        host.obs.trace = true;
        host.regionRetries = 5;
        EXPECT_EQ(StageCache::simKey("HASH_C", host, false), simk);
    }

    // Upstream hash chaining: a new upstream artifact re-keys the
    // stage even with identical knobs.
    EXPECT_NE(StageCache::profileKey("HASH_R2", o), prof);
    EXPECT_NE(StageCache::clusterKey("HASH_P2", o), clus);
    EXPECT_NE(StageCache::simKey("HASH_C2", sim, false), simk);
}

TEST(StageKeys, JournalKeyUsesUarchPartition)
{
    SimConfig a, b;
    b.prefetchDegree = 2; // describe() historically missed this
    RunKey ka = makeRunKey("app", "test", 4, WaitPolicy::Passive, 42,
                           false, a);
    RunKey kb = makeRunKey("app", "test", 4, WaitPolicy::Passive, 42,
                           false, b);
    EXPECT_NE(ka.simFingerprint, kb.simFingerprint);

    SimConfig host = a;
    host.jobs = 8;
    host.backend = ExecBackendKind::Procs;
    host.obs.metrics = true;
    RunKey kh = makeRunKey("app", "test", 4, WaitPolicy::Passive, 42,
                           false, host);
    EXPECT_EQ(ka, kh);
}

// ------------------------------------------- end-to-end memoization

ExperimentConfig
storeExpConfig(const std::string &store_dir)
{
    ExperimentConfig cfg;
    cfg.app = "619.lbm_s.1";
    cfg.input = InputClass::Test;
    cfg.requestedThreads = 4;
    cfg.loopPoint.sliceSizePerThread = 25'000;
    cfg.storeDir = store_dir;
    return cfg;
}

/** The fields a warm rerun must reproduce bit for bit. */
void
expectIdenticalResults(const ExperimentResult &a,
                       const ExperimentResult &b)
{
    EXPECT_EQ(a.analysis.chosenK, b.analysis.chosenK);
    EXPECT_EQ(a.analysis.assignment, b.analysis.assignment);
    ASSERT_EQ(a.analysis.regions.size(), b.analysis.regions.size());
    for (size_t i = 0; i < a.analysis.regions.size(); ++i) {
        EXPECT_EQ(a.analysis.regions[i].start,
                  b.analysis.regions[i].start);
        EXPECT_EQ(a.analysis.regions[i].end,
                  b.analysis.regions[i].end);
        EXPECT_EQ(a.analysis.regions[i].multiplier,
                  b.analysis.regions[i].multiplier);
    }
    EXPECT_EQ(a.regionMetrics, b.regionMetrics);
    EXPECT_EQ(a.predicted.runtimeSeconds, b.predicted.runtimeSeconds);
    EXPECT_EQ(a.predicted.cycles, b.predicted.cycles);
    EXPECT_EQ(a.fullSim, b.fullSim);
    EXPECT_EQ(a.runtimeErrorPct, b.runtimeErrorPct);
}

TEST(StorePipeline, WarmRerunServedEntirelyFromStoreBitIdentical)
{
    std::string dir = freshStoreDir("pipeline_warm");
    ExperimentResult cold = runExperiment(storeExpConfig(dir));
    EXPECT_FALSE(cold.analysis.stageHashes.recordHit);
    EXPECT_FALSE(cold.simStageHit);
    EXPECT_FALSE(cold.fullSimHit);
    EXPECT_EQ(cold.storeStats.hits, 0u);
    EXPECT_GT(cold.storeStats.publishes, 0u);
    // Provenance hashes are set on the publish path too.
    EXPECT_EQ(cold.analysis.stageHashes.record.size(), 40u);
    EXPECT_EQ(cold.analysis.stageHashes.profile.size(), 40u);
    EXPECT_EQ(cold.analysis.stageHashes.cluster.size(), 40u);

    ExperimentResult warm = runExperiment(storeExpConfig(dir));
    EXPECT_TRUE(warm.analysis.stageHashes.recordHit);
    EXPECT_TRUE(warm.analysis.stageHashes.profileHit);
    EXPECT_TRUE(warm.analysis.stageHashes.clusterHit);
    EXPECT_TRUE(warm.simStageHit);
    EXPECT_TRUE(warm.fullSimHit);
    EXPECT_EQ(warm.storeStats.misses, 0u) << "warm rerun recomputed "
                                             "something";
    EXPECT_EQ(warm.storeStats.publishes, 0u);
    EXPECT_EQ(warm.analysis.stageHashes.record,
              cold.analysis.stageHashes.record);
    EXPECT_EQ(warm.analysis.stageHashes.profile,
              cold.analysis.stageHashes.profile);
    EXPECT_EQ(warm.analysis.stageHashes.cluster,
              cold.analysis.stageHashes.cluster);
    expectIdenticalResults(cold, warm);
}

TEST(StorePipeline, UarchChangeReusesAnalysisOnly)
{
    std::string dir = freshStoreDir("pipeline_uarch");
    ExperimentResult base = runExperiment(storeExpConfig(dir));

    ExperimentConfig cfg = storeExpConfig(dir);
    applyUarchPreset(cfg.sim, "slow-mem");
    ExperimentResult swept = runExperiment(cfg);
    // Analysis is shared across the sweep...
    EXPECT_TRUE(swept.analysis.stageHashes.recordHit);
    EXPECT_TRUE(swept.analysis.stageHashes.profileHit);
    EXPECT_TRUE(swept.analysis.stageHashes.clusterHit);
    EXPECT_EQ(swept.analysis.stageHashes.cluster,
              base.analysis.stageHashes.cluster);
    // ...but the detailed simulations are not.
    EXPECT_FALSE(swept.simStageHit);
    EXPECT_FALSE(swept.fullSimHit);
    EXPECT_NE(swept.fullSim.cycles, base.fullSim.cycles);
}

TEST(StorePipeline, CorruptProfileArtifactRecomputedBitIdentical)
{
    std::string dir = freshStoreDir("pipeline_corrupt");
    ExperimentResult cold = runExperiment(storeExpConfig(dir));

    // Vandalize the profile artifact on disk.
    std::string obj =
        dir + "/objects/" + cold.analysis.stageHashes.profile;
    {
        std::fstream f(obj,
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.good()) << obj;
        f.seekp(-5, std::ios::end);
        f.put('!');
    }

    ExperimentResult warm = runExperiment(storeExpConfig(dir));
    // The damaged stage recomputed (from the cached recording) and the
    // recompute republished the identical content...
    EXPECT_TRUE(warm.analysis.stageHashes.recordHit);
    EXPECT_FALSE(warm.analysis.stageHashes.profileHit);
    EXPECT_EQ(warm.storeStats.corruptEntries, 1u);
    EXPECT_EQ(warm.analysis.stageHashes.profile,
              cold.analysis.stageHashes.profile);
    // ...so the downstream stages still hit, and results match the
    // cold run exactly.
    EXPECT_TRUE(warm.analysis.stageHashes.clusterHit);
    EXPECT_TRUE(warm.simStageHit);
    expectIdenticalResults(cold, warm);

    // And the store healed: a third run is all hits again.
    ExperimentResult healed = runExperiment(storeExpConfig(dir));
    EXPECT_TRUE(healed.analysis.stageHashes.profileHit);
    EXPECT_EQ(healed.storeStats.misses, 0u);
}

TEST(StorePipeline, HostKnobsShareStoreEntries)
{
    // A run with different host-side knobs (jobs) must be served from
    // the store populated by the serial run — same stage keys.
    std::string dir = freshStoreDir("pipeline_host");
    runExperiment(storeExpConfig(dir));
    ExperimentConfig cfg = storeExpConfig(dir);
    cfg.jobs = 3;
    ExperimentResult warm = runExperiment(cfg);
    EXPECT_TRUE(warm.simStageHit);
    EXPECT_EQ(warm.storeStats.misses, 0u);
}

} // namespace
} // namespace looppoint
