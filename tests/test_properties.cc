/**
 * @file
 * Property-based tests: parameterized sweeps over thread counts, wait
 * policies, and scheduling policies asserting the invariants the
 * LoopPoint methodology rests on:
 *
 *  P1  work conservation: main-image (filtered) instructions are
 *      independent of threads, policy, and scheduler;
 *  P2  marker invariance: the global execution count of every
 *      main-image loop header is schedule-invariant;
 *  P3  replay fidelity: pinball replay reproduces per-thread filtered
 *      block streams under any flow-control quantum;
 *  P4  slice tiling: slices partition the execution exactly and
 *      boundaries are shared;
 *  P5  multiplier closure: Eq. 2 weights cover the total work.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/looppoint.hh"
#include "dcfg/dcfg.hh"
#include "exec/driver.hh"
#include "isa/program_builder.hh"
#include "pinball/pinball.hh"
#include "util/logging.hh"

namespace looppoint {
namespace {

/** (threads, wait policy, dynamic scheduling, imbalance) */
using Param = std::tuple<uint32_t, WaitPolicy, bool, double>;

class ExecInvariants : public ::testing::TestWithParam<Param>
{
  protected:
    Program
    makeProgram() const
    {
        auto [threads, policy, dynamic, imbalance] = GetParam();
        (void)threads;
        (void)policy;
        ProgramBuilder b("prop", 57);
        uint32_t k = b.beginKernel(
            "work",
            dynamic ? SchedPolicy::DynamicFor : SchedPolicy::StaticFor,
            240, 6);
        if (imbalance > 0)
            b.setImbalance(imbalance);
        b.addStream({.footprintBytes = 1 << 18, .strideBytes = 8});
        b.addBlock(
            {.numInstrs = 28, .fracMem = 0.3, .streams = {0}});
        b.addCond({.numInstrs = 6, .streams = {}},
                  {.numInstrs = 16, .streams = {0}},
                  {.numInstrs = 10, .streams = {0}},
                  {.numInstrs = 4, .streams = {}}, 0.4);
        b.addCritical(0, {.numInstrs = 10, .streams = {0}});
        b.endKernel();
        b.runKernels({k}, 3);
        return b.build();
    }

    ExecConfig
    makeConfig() const
    {
        auto [threads, policy, dynamic, imbalance] = GetParam();
        (void)dynamic;
        (void)imbalance;
        ExecConfig cfg;
        cfg.numThreads = threads;
        cfg.waitPolicy = policy;
        return cfg;
    }
};

TEST_P(ExecInvariants, P1_FilteredWorkConserved)
{
    Program p = makeProgram();
    ExecConfig cfg = makeConfig();

    // Reference: single-threaded passive run.
    ExecConfig ref_cfg;
    ref_cfg.numThreads = 1;
    ExecutionEngine ref(p, ref_cfg);
    RoundRobinDriver(ref, 500).run();

    ExecutionEngine e(p, cfg);
    RoundRobinDriver(e, 313).run();
    EXPECT_EQ(e.globalFilteredIcount(), ref.globalFilteredIcount());
}

TEST_P(ExecInvariants, P2_MarkerCountsScheduleInvariant)
{
    Program p = makeProgram();
    ExecConfig cfg = makeConfig();
    const BlockId wh = p.kernels[0].workerHeader;

    ExecutionEngine e1(p, cfg);
    RoundRobinDriver(e1, 100).run();
    ExecutionEngine e2(p, cfg);
    RoundRobinDriver(e2, 1700).run();
    EXPECT_EQ(e1.blockExecCount(wh), e2.blockExecCount(wh));
    EXPECT_EQ(e1.blockExecCount(wh), 240u * 3u);
}

TEST_P(ExecInvariants, P3_ReplayReproducesFilteredStreams)
{
    Program p = makeProgram();
    ExecConfig cfg = makeConfig();

    class Collector : public ExecListener
    {
      public:
        explicit Collector(uint32_t n) : streams(n) {}
        void
        onBlock(uint32_t tid, BlockId block,
                const ExecutionEngine &engine) override
        {
            if (engine.program().inMainImage(block))
                streams[tid].push_back(block);
        }
        std::vector<std::vector<BlockId>> streams;
    };

    Collector rec(cfg.numThreads), rep(cfg.numThreads);
    Pinball pb = recordPinball(p, cfg, 800, &rec);
    replayPinball(p, pb, 129, &rep);
    EXPECT_EQ(rec.streams, rep.streams);
}

TEST_P(ExecInvariants, P4_SlicesPartitionExecution)
{
    Program p = makeProgram();
    ExecConfig cfg = makeConfig();

    LoopPointOptions opts;
    opts.numThreads = cfg.numThreads;
    opts.waitPolicy = cfg.waitPolicy;
    opts.sliceSizePerThread = 8'000;
    LoopPointPipeline pipe(p, opts);
    LoopPointResult lp = pipe.analyze();

    uint64_t filtered = 0;
    for (size_t i = 0; i < lp.slices.size(); ++i) {
        filtered += lp.slices[i].filteredIcount;
        if (i + 1 < lp.slices.size()) {
            EXPECT_EQ(lp.slices[i].end, lp.slices[i + 1].start);
        }
    }
    EXPECT_EQ(filtered, lp.totalFilteredIcount);

    // Same seed as the pipeline so the data-dependent control flow
    // (iteration-tied draws) matches.
    cfg.seed = opts.seed;
    ExecutionEngine e(p, cfg);
    RoundRobinDriver(e, 500).run();
    EXPECT_EQ(filtered, e.globalFilteredIcount());
}

TEST_P(ExecInvariants, P5_MultipliersCoverTotalWork)
{
    Program p = makeProgram();
    ExecConfig cfg = makeConfig();

    LoopPointOptions opts;
    opts.numThreads = cfg.numThreads;
    opts.waitPolicy = cfg.waitPolicy;
    opts.sliceSizePerThread = 8'000;
    LoopPointPipeline pipe(p, opts);
    LoopPointResult lp = pipe.analyze();

    double covered = 0.0;
    for (const auto &r : lp.regions)
        covered += r.multiplier * static_cast<double>(r.filteredIcount);
    EXPECT_NEAR(covered, static_cast<double>(lp.totalFilteredIcount),
                1.0);
}

std::string
paramName(const ::testing::TestParamInfo<Param> &info)
{
    uint32_t threads = std::get<0>(info.param);
    WaitPolicy policy = std::get<1>(info.param);
    bool dynamic = std::get<2>(info.param);
    double imbalance = std::get<3>(info.param);
    return strFormat("t%u_%s_%s_%s", threads,
                     policy == WaitPolicy::Active ? "active"
                                                  : "passive",
                     dynamic ? "dyn" : "stat",
                     imbalance > 0 ? "skew" : "flat");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExecInvariants,
    ::testing::Combine(
        ::testing::Values(1u, 2u, 4u, 8u),
        ::testing::Values(WaitPolicy::Passive, WaitPolicy::Active),
        ::testing::Bool(),
        ::testing::Values(0.0, 1.0)),
    paramName);

/** Marker invariance across thread counts (global counts). */
class MarkerAcrossThreads : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(MarkerAcrossThreads, WorkerHeaderCountFixed)
{
    ProgramBuilder b("prop2", 61);
    uint32_t k = b.beginKernel("work", SchedPolicy::DynamicFor, 300, 4);
    b.addBlock({.numInstrs = 25, .fracMem = 0.2, .streams = {}});
    b.endKernel();
    b.runKernels({k}, 2);
    Program p = b.build();

    ExecConfig cfg;
    cfg.numThreads = GetParam();
    cfg.waitPolicy = WaitPolicy::Active;
    ExecutionEngine e(p, cfg);
    RoundRobinDriver(e, 250).run();
    EXPECT_EQ(e.blockExecCount(p.kernels[0].workerHeader), 600u);
}

INSTANTIATE_TEST_SUITE_P(Threads, MarkerAcrossThreads,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u,
                                           16u));

} // namespace
} // namespace looppoint
