/**
 * @file
 * Table III: OpenMP synchronization primitives used per SPEC CPU2017
 * speed application, verified against the generated program structure
 * (the flags are derived from the kernels, not hand-maintained).
 */

#include <cstdio>

#include "bench_util.hh"
#include "workload/descriptor.hh"

using namespace looppoint;

int
main()
{
    bench::printHeader("Table III: synchronization primitives used "
                       "(sta4=static for, dyn4=dynamic for, "
                       "bar=barrier, ma=master, si=single, "
                       "red=reduction, at=atomic, lck=lock)");
    std::printf("%-22s %5s %5s %4s %3s %3s %4s %3s %4s\n",
                "application", "sta4", "dyn4", "bar", "ma", "si",
                "red", "at", "lck");
    bench::printRule();
    auto yn = [](bool b) { return b ? "Y" : ""; };
    for (const auto &app : spec2017Apps()) {
        SyncUse u = app.declaredSync();
        std::printf("%-22s %5s %5s %4s %3s %3s %4s %3s %4s\n",
                    app.name.c_str(), yn(u.staticFor), yn(u.dynamicFor),
                    yn(u.barrier), yn(u.master), yn(u.single),
                    yn(u.reduction), yn(u.atomic), yn(u.lock));
    }
    bench::printRule();
    std::printf("\n657.xz_s.2 runs 4-threaded and 657.xz_s.1 "
                "single-threaded, as in the paper.\n");
    return 0;
}
