/**
 * @file
 * Fig. 10: actual LoopPoint speedups for the NPB analogs (class C,
 * passive wait policy) at 8 and 16 threads/cores.
 *
 * Flags: --app=NAME, --quick
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "util/logging.hh"
#include "util/stats.hh"

using namespace looppoint;

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const bool quick = args.has("quick");
    const bool full = args.has("full");
    const std::string only = args.get("app");

    setQuiet(true);
    bench::printHeader("Fig. 10: NPB (class C, passive) actual "
                       "LoopPoint speedups, 8 vs 16 cores");
    std::printf("%-12s | %10s %10s | %10s %10s\n", "application",
                "ser (8t)", "par (8t)", "ser (16t)", "par (16t)");
    bench::printRule();

    bench::CsvFile csv(args, "fig10");
    csv.row({"application", "serial_8t", "parallel_8t", "serial_16t",
             "parallel_16t"});

    std::vector<double> par8, par16;
    size_t count = 0;
    for (const auto &app : npbApps()) {
        if (!only.empty() && app.name != only)
            continue;
        if (quick && count >= 3)
            break;
        if (!full && !quick && count >= 5)
            break; // default subset; --full runs all nine
        ++count;

        double ser[2], par[2];
        uint32_t idx = 0;
        for (uint32_t threads : {8u, 16u}) {
            ExperimentConfig cfg;
            cfg.app = app.name;
            cfg.input = InputClass::NpbC;
            cfg.requestedThreads = threads;
            cfg.waitPolicy = WaitPolicy::Passive;
            ExperimentResult r = runExperiment(cfg);
            ser[idx] = r.actualSerialSpeedup;
            par[idx] = r.actualParallelSpeedup;
            ++idx;
        }
        csv.row({app.name, bench::fmt(ser[0]), bench::fmt(par[0]),
                 bench::fmt(ser[1]), bench::fmt(par[1])});
        par8.push_back(par[0]);
        par16.push_back(par[1]);
        std::printf("%-12s | %10.1f %10.1f | %10.1f %10.1f\n",
                    app.name.c_str(), ser[0], par[0], ser[1], par[1]);
    }
    bench::printRule();
    std::printf("%-12s | %10s %10.1f | %10s %10.1f\n", "geomean", "",
                geoMean(par8), "", geoMean(par16));
    std::printf("\npaper reference: parallel speedups avg 1,031x / max "
                "2,503x (8t), avg 606x / max 1,498x (16t); NPB codes "
                "are more repetitive than SPEC, so their speedups are "
                "larger and errors smaller.\n");
    return 0;
}
