/**
 * @file
 * Extension experiment: synchronization-agnosticism beyond OpenMP.
 *
 * The paper's first contribution claims LoopPoint applies to generic
 * multi-threaded programs "no matter the synchronization primitives
 * used". The evaluated suites are all OpenMP; this bench runs the full
 * methodology on pthread-style analogs — a lock-based software
 * pipeline, an atomics-heavy work queue with unit-size task claiming,
 * and a lock-chained table updater — under both wait policies, and
 * reports the same error/speedup columns as Fig. 5/8.
 *
 * Flags: --app=NAME
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "util/logging.hh"
#include "util/stats.hh"

using namespace looppoint;

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::string only = args.get("app");
    setQuiet(true);

    bench::printHeader("Extension: LoopPoint on pthread-style "
                       "(lock/atomic-centric) applications, train-"
                       "equivalent inputs, 8 threads");
    std::printf("%-14s | %11s %11s | %9s %9s | %4s\n", "application",
                "err% (act)", "err% (pas)", "theo-par", "act-par",
                "k");
    bench::printRule();

    bench::CsvFile csv(args, "ext_generic_sync");
    csv.row({"application", "err_active_pct", "err_passive_pct",
             "theoretical_parallel", "actual_parallel", "k"});

    std::vector<double> errs;
    for (const auto &app : pthreadApps()) {
        if (!only.empty() && app.name != only)
            continue;

        double err[2];
        double theo_par = 0, act_par = 0;
        uint32_t k = 0;
        for (int pol = 0; pol < 2; ++pol) {
            ExperimentConfig cfg;
            cfg.app = app.name;
            cfg.input = InputClass::Train;
            cfg.requestedThreads = 8;
            cfg.waitPolicy =
                pol == 0 ? WaitPolicy::Active : WaitPolicy::Passive;
            ExperimentResult r = runExperiment(cfg);
            err[pol] = r.runtimeErrorPct;
            errs.push_back(r.runtimeErrorPct);
            if (pol == 1) {
                theo_par = r.theoreticalParallelSpeedup;
                act_par = r.actualParallelSpeedup;
                k = r.analysis.chosenK;
            }
        }
        std::printf("%-14s | %11.2f %11.2f | %9.1f %9.1f | %4u\n",
                    app.name.c_str(), err[0], err[1], theo_par,
                    act_par, k);
        csv.row({app.name, bench::fmt(err[0]), bench::fmt(err[1]),
                 bench::fmt(theo_par), bench::fmt(act_par),
                 std::to_string(k)});
    }
    bench::printRule();
    std::printf("%-14s | %11.2f\n", "mean abs err", mean(errs));
    std::printf("\nexpected shape: the atomics/lock workloads land in "
                "the same low-single-digit band as the OpenMP suites "
                "— the loop-based unit of work and the "
                "synchronization-library filter do not depend on "
                "OpenMP semantics. The lock-batching pipeline sits "
                "slightly higher (~5%%): lock hand-off timing is "
                "runtime-dependent state that BBVs cannot see "
                "(Sec. III-K).\n");
    return 0;
}
