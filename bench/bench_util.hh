/**
 * @file
 * Shared helpers for the experiment harnesses in bench/: tiny argv
 * parsing and table formatting. Each bench binary regenerates one
 * table or figure of the paper and prints the corresponding rows.
 */

#ifndef LOOPPOINT_BENCH_BENCH_UTIL_HH
#define LOOPPOINT_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace looppoint::bench {

/** Minimal flag parser: --name or --name=value. */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i)
            args.emplace_back(argv[i]);
    }

    bool
    has(const std::string &flag) const
    {
        for (const auto &a : args)
            if (a == "--" + flag ||
                a.rfind("--" + flag + "=", 0) == 0)
                return true;
        return false;
    }

    std::string
    get(const std::string &flag, const std::string &def = "") const
    {
        std::string prefix = "--" + flag + "=";
        for (const auto &a : args)
            if (a.rfind(prefix, 0) == 0)
                return a.substr(prefix.size());
        return def;
    }

    uint64_t
    getU64(const std::string &flag, uint64_t def) const
    {
        std::string v = get(flag);
        return v.empty() ? def : std::stoull(v);
    }

  private:
    std::vector<std::string> args;
};

/**
 * Optional CSV emission for plotting: pass --csv (or --csv=DIR) to a
 * bench and it writes its series to <DIR>/<name>.csv alongside the
 * console table. Disabled (all calls no-ops) when --csv is absent.
 */
class CsvFile
{
  public:
    /** @param args parsed flags; @param name file stem, e.g. "fig5" */
    CsvFile(const Args &args, const std::string &name)
    {
        if (!args.has("csv"))
            return;
        std::string dir = args.get("csv", ".");
        if (dir.empty())
            dir = ".";
        path = dir + "/" + name + ".csv";
        file = std::fopen(path.c_str(), "w");
        if (!file)
            std::fprintf(stderr, "warn: cannot write %s\n",
                         path.c_str());
    }

    ~CsvFile()
    {
        if (file)
            std::fclose(file);
    }

    CsvFile(const CsvFile &) = delete;
    CsvFile &operator=(const CsvFile &) = delete;

    /** Emit one row; quoting is unnecessary for our simple fields. */
    void
    row(const std::vector<std::string> &fields)
    {
        if (!file)
            return;
        for (size_t i = 0; i < fields.size(); ++i)
            std::fprintf(file, "%s%s", i ? "," : "",
                         fields[i].c_str());
        std::fprintf(file, "\n");
    }

    bool enabled() const { return file != nullptr; }
    const std::string &fileName() const { return path; }

  private:
    std::FILE *file = nullptr;
    std::string path;
};

inline std::string
fmt(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

inline void
printRule(int width = 78)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

inline void
printHeader(const char *title)
{
    printRule();
    std::printf("%s\n", title);
    printRule();
}

} // namespace looppoint::bench

#endif // LOOPPOINT_BENCH_BENCH_UTIL_HH
