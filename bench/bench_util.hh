/**
 * @file
 * Shared helpers for the experiment harnesses in bench/: tiny argv
 * parsing and table formatting. Each bench binary regenerates one
 * table or figure of the paper and prints the corresponding rows.
 */

#ifndef LOOPPOINT_BENCH_BENCH_UTIL_HH
#define LOOPPOINT_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "util/logging.hh"

namespace looppoint::bench {

/** Minimal flag parser: --name or --name=value. */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i)
            args.emplace_back(argv[i]);
    }

    bool
    has(const std::string &flag) const
    {
        for (const auto &a : args)
            if (a == "--" + flag ||
                a.rfind("--" + flag + "=", 0) == 0)
                return true;
        return false;
    }

    std::string
    get(const std::string &flag, const std::string &def = "") const
    {
        std::string prefix = "--" + flag + "=";
        for (const auto &a : args)
            if (a.rfind(prefix, 0) == 0)
                return a.substr(prefix.size());
        return def;
    }

    uint64_t
    getU64(const std::string &flag, uint64_t def) const
    {
        std::string v = get(flag);
        return v.empty() ? def : std::stoull(v);
    }

  private:
    std::vector<std::string> args;
};

/**
 * Optional CSV emission for plotting: pass --csv (or --csv=DIR) to a
 * bench and it writes its series to <DIR>/<name>.csv alongside the
 * console table. Disabled (all calls no-ops) when --csv is absent.
 */
class CsvFile
{
  public:
    /** @param args parsed flags; @param name file stem, e.g. "fig5" */
    CsvFile(const Args &args, const std::string &name)
    {
        if (!args.has("csv"))
            return;
        std::string dir = args.get("csv", ".");
        if (dir.empty())
            dir = ".";
        path = dir + "/" + name + ".csv";
        file = std::fopen(path.c_str(), "w");
        if (!file)
            looppoint::warn("cannot write %s", path.c_str());
    }

    ~CsvFile()
    {
        if (file)
            std::fclose(file);
    }

    CsvFile(const CsvFile &) = delete;
    CsvFile &operator=(const CsvFile &) = delete;

    /** Emit one row; quoting is unnecessary for our simple fields. */
    void
    row(const std::vector<std::string> &fields)
    {
        if (!file)
            return;
        for (size_t i = 0; i < fields.size(); ++i)
            std::fprintf(file, "%s%s", i ? "," : "",
                         fields[i].c_str());
        std::fprintf(file, "\n");
    }

    bool enabled() const { return file != nullptr; }
    const std::string &fileName() const { return path; }

  private:
    std::FILE *file = nullptr;
    std::string path;
};

inline std::string
fmt(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/** Wall-clock stopwatch for phase timing around pool-parallel work. */
class WallTimer
{
  public:
    WallTimer() : t0(std::chrono::steady_clock::now()) {}

    void reset() { t0 = std::chrono::steady_clock::now(); }

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point t0;
};

/**
 * Measured host-parallel self-relative speedup of a phase: the
 * serial-equivalent time (sum of per-task wall times, plus any serial
 * prefix) over the measured phase wall time. This is what the host
 * actually achieved, as opposed to the theoretical region-count bound
 * the figures also report.
 */
inline double
hostSpeedup(double serial_equivalent_s, double phase_wall_s)
{
    return phase_wall_s > 0.0 ? serial_equivalent_s / phase_wall_s
                              : 0.0;
}

/** Parallel efficiency of a phase run on `jobs` host workers. */
inline double
hostEfficiency(double serial_equivalent_s, double phase_wall_s,
               uint32_t jobs)
{
    return jobs ? hostSpeedup(serial_equivalent_s, phase_wall_s) /
                      static_cast<double>(jobs)
                : 0.0;
}

inline void
printRule(int width = 78)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

inline void
printHeader(const char *title)
{
    printRule();
    std::printf("%s\n", title);
    printRule();
}

} // namespace looppoint::bench

#endif // LOOPPOINT_BENCH_BENCH_UTIL_HH
