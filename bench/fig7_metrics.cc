/**
 * @file
 * Fig. 7: prediction quality for microarchitectural metrics beyond
 * runtime — (a) absolute cycle-count error %, (b) branch-MPKI absolute
 * difference, (c) L2-MPKI absolute difference — for the SPEC CPU2017
 * train analogs at 8 threads, active and passive wait policies,
 * unconstrained simulation.
 *
 * Flags: --app=NAME, --quick
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "util/logging.hh"
#include "util/stats.hh"

using namespace looppoint;

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const bool quick = args.has("quick");
    const bool full = args.has("full");
    const std::string only = args.get("app");

    setQuiet(true);
    bench::printHeader("Fig. 7: metric prediction (SPEC CPU2017 train, "
                       "8 threads; cycles err%, MPKI abs diffs)");
    std::printf("%-22s | %9s %9s | %9s %9s | %9s %9s\n", "application",
                "cyc(act)", "cyc(pas)", "bMPKI(a)", "bMPKI(p)",
                "l2MPKI(a)", "l2MPKI(p)");
    bench::printRule();

    std::vector<double> cyc_a, cyc_p, bm_a, bm_p, l2_a, l2_p;
    size_t count = 0;
    for (const auto &app : spec2017Apps()) {
        if (!only.empty() && app.name != only)
            continue;
        if (quick && count >= 4)
            break;
        if (!full && !quick && count >= 7)
            break; // default subset; --full runs all fourteen
        ++count;

        double cyc[2], bm[2], l2[2];
        for (int pol = 0; pol < 2; ++pol) {
            ExperimentConfig cfg;
            cfg.app = app.name;
            cfg.input = InputClass::Train;
            cfg.requestedThreads = 8;
            cfg.waitPolicy =
                pol == 0 ? WaitPolicy::Active : WaitPolicy::Passive;
            ExperimentResult r = runExperiment(cfg);
            cyc[pol] = r.cyclesErrorPct;
            bm[pol] = r.branchMpkiAbsDiff;
            l2[pol] = r.l2MpkiAbsDiff;
        }
        cyc_a.push_back(cyc[0]);
        cyc_p.push_back(cyc[1]);
        bm_a.push_back(bm[0]);
        bm_p.push_back(bm[1]);
        l2_a.push_back(l2[0]);
        l2_p.push_back(l2[1]);
        std::printf("%-22s | %9.2f %9.2f | %9.3f %9.3f | %9.3f "
                    "%9.3f\n",
                    app.name.c_str(), cyc[0], cyc[1], bm[0], bm[1],
                    l2[0], l2[1]);
    }
    bench::printRule();
    std::printf("%-22s | %9.2f %9.2f | %9.3f %9.3f | %9.3f %9.3f\n",
                "mean", mean(cyc_a), mean(cyc_p), mean(bm_a),
                mean(bm_p), mean(l2_a), mean(l2_p));
    std::printf("\npaper reference: cycle errors are a few percent; "
                "branch/L2 MPKI differences are small absolute values "
                "(reported as diffs, not %%, as in the paper).\n");
    return 0;
}
