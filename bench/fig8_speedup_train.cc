/**
 * @file
 * Fig. 8: theoretical vs. actual, serial vs. parallel speedups of
 * LoopPoint on the SPEC CPU2017 speed analogs (active wait policy,
 * train inputs, 8 threads).
 *
 * Theoretical speedup is the reduction in detailed-simulation work
 * (filtered instructions); actual speedup is the measured reduction in
 * simulator wall-clock time, with parallel variants assuming every
 * region simulates concurrently (bounded by the slowest region).
 *
 * Flags: --app=NAME, --quick, --passive, --jobs=N (host workers for
 * the checkpointed phase; default hardware concurrency). The host-par
 * column is the *measured* host-parallel self-relative speedup of the
 * checkpointed phase, not the theoretical region-count bound.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/thread_pool.hh"

using namespace looppoint;

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const bool quick = args.has("quick");
    const std::string only = args.get("app");
    const bool passive = args.has("passive");
    const uint32_t jobs = static_cast<uint32_t>(
        args.getU64("jobs", ThreadPool::defaultWorkers()));

    setQuiet(true);
    bench::printHeader(
        "Fig. 8: theoretical and actual speedups, serial and parallel "
        "(SPEC CPU2017 train, active, 8 threads)");
    std::printf("%-22s | %10s %10s | %10s %10s | %8s | %4s\n",
                "application", "theo-ser", "act-ser", "theo-par",
                "act-par", "host-par", "k");
    bench::printRule();

    bench::CsvFile csv(args, "fig8");
    csv.row({"application", "theoretical_serial", "actual_serial",
             "theoretical_parallel", "actual_parallel",
             "host_parallel_measured", "jobs", "k"});

    std::vector<double> ts, as, tp, ap, hp;
    size_t count = 0;
    for (const auto &app : spec2017Apps()) {
        if (!only.empty() && app.name != only)
            continue;
        if (quick && count >= 4)
            break;
        ++count;

        ExperimentConfig cfg;
        cfg.app = app.name;
        cfg.input = InputClass::Train;
        cfg.requestedThreads = 8;
        cfg.waitPolicy =
            passive ? WaitPolicy::Passive : WaitPolicy::Active;
        cfg.jobs = jobs;
        ExperimentResult r = runExperiment(cfg);

        std::printf("%-22s | %10.1f %10.1f | %10.1f %10.1f | %7.2fx "
                    "| %4u\n",
                    app.name.c_str(), r.theoreticalSerialSpeedup,
                    r.actualSerialSpeedup, r.theoreticalParallelSpeedup,
                    r.actualParallelSpeedup, r.hostParallelSpeedup,
                    r.analysis.chosenK);
        csv.row({app.name, bench::fmt(r.theoreticalSerialSpeedup),
                 bench::fmt(r.actualSerialSpeedup),
                 bench::fmt(r.theoreticalParallelSpeedup),
                 bench::fmt(r.actualParallelSpeedup),
                 bench::fmt(r.hostParallelSpeedup),
                 std::to_string(r.jobs),
                 std::to_string(r.analysis.chosenK)});
        ts.push_back(r.theoreticalSerialSpeedup);
        as.push_back(r.actualSerialSpeedup);
        tp.push_back(r.theoreticalParallelSpeedup);
        ap.push_back(r.actualParallelSpeedup);
        if (r.hostParallelSpeedup > 0.0)
            hp.push_back(r.hostParallelSpeedup);
    }
    bench::printRule();
    std::printf("%-22s | %10.1f %10.1f | %10.1f %10.1f | %7.2fx |\n",
                "geomean", geoMean(ts), geoMean(as), geoMean(tp),
                geoMean(ap), geoMean(hp));
    std::printf("\npaper reference (train): avg 9x serial, 303x "
                "parallel, max 801x; instruction budgets here are "
                "~1000x smaller, so expect the same shape at smaller "
                "magnitudes. host-par is the measured checkpointed-"
                "phase speedup on %u host worker(s).\n",
                jobs);
    return 0;
}
