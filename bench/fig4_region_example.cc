/**
 * @file
 * Fig. 4: anatomy of one representative region identified by
 * LoopPoint on the 638.imagick analog (train, 8 threads): the loops
 * that make up the region with their per-region iteration counts
 * (Fig. 4a), and the IPC-over-time trace of the full run vs. the
 * chosen region with its (PC, count) boundaries (Fig. 4b).
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "core/looppoint.hh"
#include "dcfg/dcfg.hh"
#include "exec/driver.hh"
#include "sim/multicore.hh"
#include "util/logging.hh"
#include "workload/descriptor.hh"

using namespace looppoint;

namespace {

/** Count loop-header executions within one profiled slice. */
void
printLoopIterations(const Program &prog, const Dcfg &dcfg,
                    const SliceRecord &slice)
{
    std::printf("\nFig. 4a: loops inside the chosen region "
                "(iterations per thread)\n");
    std::printf("%-14s %-10s", "loop header", "image");
    for (uint32_t t = 0; t < slice.perThread.size(); ++t)
        std::printf(" %8s%u", "t", t);
    std::printf("\n");
    bench::printRule(26 + 9 * slice.perThread.size());
    for (const auto &loop : dcfg.loops()) {
        if (loop.image != ImageId::Main)
            continue;
        // Iterations of this loop within the slice, per thread.
        bool any = false;
        for (const auto &bbv : slice.perThread)
            any |= bbv.counts.count(loop.header) > 0;
        if (!any)
            continue;
        std::printf("%#-14llx %-10s",
                    static_cast<unsigned long long>(
                        prog.blocks[loop.header].pc),
                    "main");
        for (const auto &bbv : slice.perThread) {
            auto it = bbv.counts.find(loop.header);
            std::printf(" %9llu",
                        static_cast<unsigned long long>(
                            it == bbv.counts.end() ? 0 : it->second));
        }
        std::printf("\n");
    }
}

/** IPC trace: run detailed simulation, sampling IPC per window. */
void
printIpcTrace(const Program &prog, uint32_t threads,
              const char *label, Addr start_pc, uint64_t start_count,
              Addr end_pc, uint64_t end_count)
{
    ExecConfig cfg;
    cfg.numThreads = threads;
    cfg.waitPolicy = WaitPolicy::Passive;
    SimConfig sim_cfg;
    MulticoreSim sim(prog, cfg, sim_cfg);

    std::printf("\nFig. 4b (%s): IPC over time\n", label);
    if (start_pc != 0) {
        sim.fastForward(
            [&] {
                BlockId b = kInvalidBlock;
                for (const auto &bb : prog.blocks)
                    if (bb.pc == start_pc)
                        b = bb.id;
                return sim.engine().blockExecCount(b) >= start_count;
            },
            true);
    }

    // Sample IPC in fixed instruction windows.
    const uint64_t window = 400'000;
    uint64_t printed = 0;
    while (!sim.engine().allFinished() && printed < 40) {
        uint64_t end_icount = sim.engine().globalIcount() + window;
        SimMetrics m = sim.runDetailed([&] {
            if (sim.engine().globalIcount() >= end_icount)
                return true;
            if (end_pc != 0) {
                BlockId b = kInvalidBlock;
                for (const auto &bb : prog.blocks)
                    if (bb.pc == end_pc)
                        b = bb.id;
                if (sim.engine().blockExecCount(b) >= end_count)
                    return true;
            }
            return false;
        });
        if (m.instructions == 0)
            break;
        int bars = static_cast<int>(m.ipc() * 8);
        std::printf("  %3llu | %5.2f ",
                    static_cast<unsigned long long>(printed), m.ipc());
        for (int i = 0; i < bars && i < 60; ++i)
            std::putchar('#');
        std::putchar('\n');
        ++printed;
        if (end_pc != 0) {
            BlockId b = kInvalidBlock;
            for (const auto &bb : prog.blocks)
                if (bb.pc == end_pc)
                    b = bb.id;
            if (sim.engine().blockExecCount(b) >= end_count)
                break;
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    setQuiet(true);
    std::string name = args.get("app", "638.imagick_s.1");
    bench::printHeader("Fig. 4: a representative LoopPoint region "
                       "(638.imagick analog, train, 8 threads)");

    const AppDescriptor &app = findApp(name);
    const uint32_t threads = app.effectiveThreads(8);
    Program prog = generateProgram(app, InputClass::Train);

    LoopPointOptions opts;
    opts.numThreads = threads;
    opts.waitPolicy = WaitPolicy::Passive;
    LoopPointPipeline pipe(prog, opts);
    LoopPointResult lp = pipe.analyze();

    // Pick the region with the largest multiplier (the "hottest").
    const LoopPointRegion *best = &lp.regions.front();
    for (const auto &r : lp.regions)
        if (r.multiplier > best->multiplier)
            best = &r;

    std::printf("chosen region: cluster %u, slice %u, "
                "start=(%#llx,%llu), end=(%#llx,%llu), mult=%.1f\n",
                best->cluster, best->sliceIndex,
                static_cast<unsigned long long>(best->start.pc),
                static_cast<unsigned long long>(best->start.count),
                static_cast<unsigned long long>(best->end.pc),
                static_cast<unsigned long long>(best->end.count),
                best->multiplier);

    // DCFG for loop structure.
    ExecConfig cfg;
    cfg.numThreads = threads;
    cfg.waitPolicy = WaitPolicy::Passive;
    ExecutionEngine engine(prog, cfg);
    DcfgBuilder builder(prog, threads);
    RoundRobinDriver driver(engine, 1000);
    driver.run(&builder);
    Dcfg dcfg = builder.build();

    printLoopIterations(prog, dcfg, lp.slices[best->sliceIndex]);
    printIpcTrace(prog, threads, "full application", 0, 0, 0, 0);
    printIpcTrace(prog, threads, "chosen region", best->start.pc,
                  best->start.count, best->end.pc, best->end.count);
    std::printf("\npaper reference: the region's IPC trace matches a "
                "recurring segment of the full-application trace, with "
                "(PC, count) boundaries marked.\n");
    return 0;
}
