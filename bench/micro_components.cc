/**
 * @file
 * Google-Benchmark microbenchmarks of the substrate components: the
 * functional engine's stepping rate, cache hierarchy throughput,
 * branch predictor throughput, k-means clustering, and the random
 * projection — the pieces whose performance bounds how large an
 * analysis this library can run.
 */

#include <benchmark/benchmark.h>

#include "cluster/kmeans.hh"
#include "exec/driver.hh"
#include "exec/engine.hh"
#include "isa/program_builder.hh"
#include "pinball/pinball.hh"
#include "sim/branch_predictor.hh"
#include "sim/cache.hh"
#include "sim/multicore.hh"
#include "util/rng.hh"
#include "workload/descriptor.hh"

namespace looppoint {
namespace {

Program
benchProgram()
{
    ProgramBuilder b("bench", 71);
    uint32_t k = b.beginKernel("work", SchedPolicy::StaticFor, 4000);
    b.addStream({.footprintBytes = 4u << 20, .strideBytes = 8});
    b.addBlock({.numInstrs = 40, .fracMem = 0.3, .streams = {0}});
    b.endKernel();
    b.runKernels({k}, 100);
    return b.build();
}

void
BM_EngineFunctionalStep(benchmark::State &state)
{
    Program p = benchProgram();
    ExecConfig cfg;
    cfg.numThreads = static_cast<uint32_t>(state.range(0));
    uint64_t instrs = 0;
    for (auto _ : state) {
        ExecutionEngine e(p, cfg);
        RoundRobinDriver d(e, 1000);
        d.run(nullptr,
              [&] { return e.globalIcount() > 2'000'000; });
        instrs += e.globalIcount();
    }
    state.SetItemsProcessed(static_cast<int64_t>(instrs));
}
BENCHMARK(BM_EngineFunctionalStep)->Arg(1)->Arg(4)->Arg(8);

void
BM_DetailedSimulation(benchmark::State &state)
{
    Program p = benchProgram();
    ExecConfig cfg;
    cfg.numThreads = 4;
    SimConfig sc;
    uint64_t instrs = 0;
    for (auto _ : state) {
        MulticoreSim sim(p, cfg, sc);
        SimMetrics m = sim.runDetailed([&] {
            return sim.engine().globalIcount() > 500'000;
        });
        instrs += m.instructions;
    }
    state.SetItemsProcessed(static_cast<int64_t>(instrs));
}
BENCHMARK(BM_DetailedSimulation);

void
BM_CacheHierarchyAccess(benchmark::State &state)
{
    SimConfig cfg;
    CacheHierarchy h(cfg, 8);
    Rng rng(3);
    uint64_t n = 0;
    for (auto _ : state) {
        Addr addr = (rng.next() & 0xffffff) << 3;
        benchmark::DoNotOptimize(
            h.access(static_cast<uint32_t>(n % 8), addr,
                     (n & 7) == 0));
        ++n;
    }
    state.SetItemsProcessed(static_cast<int64_t>(n));
}
BENCHMARK(BM_CacheHierarchyAccess);

void
BM_BranchPredictor(benchmark::State &state)
{
    PentiumMBranchPredictor bp;
    Rng rng(7);
    uint64_t n = 0;
    for (auto _ : state) {
        Addr pc = 0x400000 + ((n * 37) & 0xfff);
        benchmark::DoNotOptimize(
            bp.predictAndTrain(pc, rng.nextBool(0.7)));
        ++n;
    }
    state.SetItemsProcessed(static_cast<int64_t>(n));
}
BENCHMARK(BM_BranchPredictor);

void
BM_Kmeans(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    Rng rng(11);
    FeatureMatrix points;
    for (size_t i = 0; i < n; ++i) {
        std::vector<double> row(100);
        for (auto &v : row)
            v = rng.nextGaussian();
        points.push_back(std::move(row));
    }
    for (auto _ : state) {
        Rng krng(13);
        benchmark::DoNotOptimize(kmeans(points, 10, krng));
    }
}
BENCHMARK(BM_Kmeans)->Arg(64)->Arg(256);

void
BM_RandomProjection(benchmark::State &state)
{
    RandomProjector proj(100, 17);
    std::vector<std::pair<uint64_t, double>> row;
    Rng rng(19);
    for (int i = 0; i < 200; ++i)
        row.emplace_back(rng.next() % 100000, rng.nextDouble());
    for (auto _ : state)
        benchmark::DoNotOptimize(proj.project(row));
}
BENCHMARK(BM_RandomProjection);

void
BM_RecordReplay(benchmark::State &state)
{
    Program p = benchProgram();
    ExecConfig cfg;
    cfg.numThreads = 4;
    for (auto _ : state) {
        Pinball pb = recordPinball(p, cfg, 1000);
        benchmark::DoNotOptimize(pb);
    }
}
BENCHMARK(BM_RecordReplay);

} // namespace
} // namespace looppoint

BENCHMARK_MAIN();
