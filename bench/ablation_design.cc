/**
 * @file
 * Ablations over LoopPoint's design choices (DESIGN.md Section 5):
 *
 *   1. slice size        — error/speedup tradeoff of the N x 100M rule
 *   2. maxK              — clustering budget
 *   3. projection dims   — the 100-dimension random projection
 *   4. spin filtering    — the core contribution: filtering
 *                          synchronization code from BBVs and counts
 *                          (evaluated under the active wait policy,
 *                          where it matters)
 *
 * Flags: --app=NAME (default 603.bwaves_s.1), --full (all four
 * sweeps; default runs all as well, kept for symmetry)
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "util/logging.hh"

using namespace looppoint;

namespace {

ExperimentResult
runWith(const std::string &app, WaitPolicy policy,
        const LoopPointOptions &lp_opts)
{
    ExperimentConfig cfg;
    cfg.app = app;
    cfg.input = InputClass::Train;
    cfg.requestedThreads = 8;
    cfg.waitPolicy = policy;
    cfg.loopPoint = lp_opts;
    return runExperiment(cfg);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::string app = args.get("app", "603.bwaves_s.1");
    setQuiet(true);

    bench::printHeader(("Ablations of LoopPoint design choices on " +
                        app + " (train, 8 threads)")
                           .c_str());

    std::printf("\n(1) slice size per thread (paper: 100M; scaled "
                "analog default 100K)\n");
    std::printf("%8s | %8s | %8s | %10s | %10s\n", "slice", "slices",
                "k", "err%", "par-spdup");
    bench::printRule(60);
    for (uint64_t slice : {25'000ull, 50'000ull, 100'000ull,
                           200'000ull, 400'000ull}) {
        LoopPointOptions o;
        o.sliceSizePerThread = slice;
        ExperimentResult r = runWith(app, WaitPolicy::Passive, o);
        std::printf("%7lluK | %8zu | %8u | %10.2f | %10.1f\n",
                    static_cast<unsigned long long>(slice / 1000),
                    r.analysis.slices.size(), r.analysis.chosenK,
                    r.runtimeErrorPct, r.theoreticalParallelSpeedup);
    }

    std::printf("\n(2) maxK (paper: 50)\n");
    std::printf("%8s | %8s | %10s | %10s\n", "maxK", "k", "err%",
                "ser-spdup");
    bench::printRule(46);
    for (uint32_t maxk : {2u, 5u, 10u, 25u, 50u}) {
        LoopPointOptions o;
        o.maxK = maxk;
        ExperimentResult r = runWith(app, WaitPolicy::Passive, o);
        std::printf("%8u | %8u | %10.2f | %10.1f\n", maxk,
                    r.analysis.chosenK, r.runtimeErrorPct,
                    r.theoreticalSerialSpeedup);
    }

    std::printf("\n(3) random-projection dimensions (paper: 100)\n");
    std::printf("%8s | %8s | %10s\n", "dims", "k", "err%");
    bench::printRule(32);
    for (uint32_t dims : {10u, 25u, 50u, 100u, 200u}) {
        LoopPointOptions o;
        o.projectionDims = dims;
        ExperimentResult r = runWith(app, WaitPolicy::Passive, o);
        std::printf("%8u | %8u | %10.2f\n", dims, r.analysis.chosenK,
                    r.runtimeErrorPct);
    }

    std::printf("\n(4) spin/synchronization filtering under the "
                "ACTIVE wait policy (the key design choice)\n");
    std::printf("%10s | %8s | %10s\n", "filter", "k", "err%");
    bench::printRule(34);
    for (bool filter : {true, false}) {
        LoopPointOptions o;
        o.filterSpin = filter;
        ExperimentResult r = runWith(app, WaitPolicy::Active, o);
        std::printf("%10s | %8u | %10.2f\n", filter ? "on" : "off",
                    r.analysis.chosenK, r.runtimeErrorPct);
    }
    std::printf("\nexpected shapes: error grows with very large "
                "slices (fewer choices) and very small maxK; "
                "filtering off hurts under active waiting because "
                "spin code pollutes the work metric.\n");
    return 0;
}
