/**
 * @file
 * Fig. 5 (and the Section V-A.1 constrained-replay study): runtime
 * prediction error of LoopPoint for the SPEC CPU2017 speed analogs
 * with train inputs and 8 threads, under the active and passive
 * OpenMP wait policies.
 *
 * Flags:
 *   --inorder       simulate an in-order core instead (Fig. 5b)
 *   --constrained   constrained (PinPlay-ordered) region simulation
 *   --app=NAME      run a single app
 *   --quick         first four apps only (CI-friendly)
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "util/logging.hh"
#include "util/stats.hh"

using namespace looppoint;

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const bool inorder = args.has("inorder");
    const bool constrained = args.has("constrained");
    const bool quick = args.has("quick");
    const std::string only = args.get("app");

    setQuiet(true);

    const char *title =
        inorder ? "Fig. 5b: runtime prediction error, in-order core "
                  "(SPEC CPU2017 train, 8 threads)"
                : (constrained
                       ? "Sec. V-A.1: constrained-replay runtime error "
                         "(SPEC CPU2017 train, 8 threads)"
                       : "Fig. 5a: runtime prediction error "
                         "(SPEC CPU2017 train, 8 threads)");
    bench::printHeader(title);
    std::printf("%-22s %8s | %12s %12s | %12s %12s\n", "application",
                "threads", "err% (act)", "err% (pas)", "k (act)",
                "k (pas)");
    bench::printRule();

    bench::CsvFile csv(args, inorder ? "fig5b" : "fig5a");
    csv.row({"application", "threads", "err_active_pct",
             "err_passive_pct", "k_active", "k_passive"});

    std::vector<double> errs_active, errs_passive;
    size_t count = 0;
    for (const auto &app : spec2017Apps()) {
        if (!only.empty() && app.name != only)
            continue;
        if (quick && count >= 4)
            break;
        ++count;

        double err[2] = {0, 0};
        uint32_t k[2] = {0, 0};
        uint32_t threads = 0;
        for (int pol = 0; pol < 2; ++pol) {
            ExperimentConfig cfg;
            cfg.app = app.name;
            cfg.input = InputClass::Train;
            cfg.requestedThreads = 8;
            cfg.waitPolicy =
                pol == 0 ? WaitPolicy::Active : WaitPolicy::Passive;
            cfg.constrainedRegions = constrained;
            if (inorder)
                cfg.sim.coreType = CoreType::InOrder;
            ExperimentResult r = runExperiment(cfg);
            err[pol] = r.runtimeErrorPct;
            k[pol] = r.analysis.chosenK;
            threads = r.threads;
            (pol == 0 ? errs_active : errs_passive)
                .push_back(r.runtimeErrorPct);
        }
        std::printf("%-22s %8u | %12.2f %12.2f | %12u %12u\n",
                    app.name.c_str(), threads, err[0], err[1], k[0],
                    k[1]);
        csv.row({app.name, std::to_string(threads), bench::fmt(err[0]),
                 bench::fmt(err[1]), std::to_string(k[0]),
                 std::to_string(k[1])});
    }
    bench::printRule();
    std::printf("%-22s %8s | %12.2f %12.2f |\n", "mean abs error", "",
                mean(errs_active), mean(errs_passive));
    std::printf("%-22s %8s | %12.2f %12.2f |\n", "max abs error", "",
                maxOf(errs_active), maxOf(errs_passive));
    std::printf("\npaper reference: 2.33%% mean abs error (active), "
                "2.23%% (passive), unconstrained OoO.\n");
    return 0;
}
