/**
 * @file
 * Section II motivation: a naive multi-threaded adaptation of SimPoint
 * (fixed global-instruction slices, no spin filtering, aggregate BBVs)
 * vs. LoopPoint, under both wait policies.
 *
 * The paper reports ~25% average error (up to 68%) for the naive
 * scheme under the active wait policy vs. ~2% for LoopPoint: spinning
 * makes instruction counts an unstable measure of work.
 *
 * Flags: --app=NAME, --quick
 */

#include <cstdio>
#include <vector>

#include "baselines/naive_simpoint.hh"
#include "bench_util.hh"
#include "core/experiment.hh"
#include "util/logging.hh"
#include "util/stats.hh"

using namespace looppoint;

namespace {

double
naiveError(const AppDescriptor &app, WaitPolicy policy)
{
    const uint32_t threads = app.effectiveThreads(8);
    Program prog = generateProgram(app, InputClass::Train);

    NaiveSimpointOptions opts;
    opts.numThreads = threads;
    opts.waitPolicy = policy;
    opts.sliceSizeGlobal = threads * 100'000;

    NaiveSimpointResult analysis = analyzeNaiveSimpoint(prog, opts);
    SimConfig sim_cfg;
    std::vector<SimMetrics> regions;
    for (const auto &r : analysis.regions)
        regions.push_back(simulateNaiveRegion(prog, opts, r, sim_cfg));
    double predicted = extrapolateNaiveRuntime(analysis, regions);

    ExecConfig ecfg;
    ecfg.numThreads = threads;
    ecfg.waitPolicy = policy;
    ecfg.seed = opts.seed;
    MulticoreSim full(prog, ecfg, sim_cfg);
    double actual = full.run().runtimeSeconds;
    return absRelErrorPct(predicted, actual);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const bool quick = args.has("quick");
    const bool full = args.has("full");
    const std::string only = args.get("app");

    setQuiet(true);
    bench::printHeader("Motivation (Sec. II): naive MT-SimPoint vs "
                       "LoopPoint runtime error (train, 8 threads)");
    std::printf("%-22s | %12s %12s | %12s %12s\n", "application",
                "naive(act)", "naive(pas)", "LP(act)", "LP(pas)");
    bench::printRule();

    std::vector<double> na, np, la, lpp;
    size_t count = 0;
    for (const auto &app : spec2017Apps()) {
        if (!only.empty() && app.name != only)
            continue;
        if ((quick || !full) && count >= 4)
            break; // default subset; --full runs all fourteen
        ++count;

        double n_act = naiveError(app, WaitPolicy::Active);
        double n_pas = naiveError(app, WaitPolicy::Passive);

        double l_err[2];
        for (int pol = 0; pol < 2; ++pol) {
            ExperimentConfig cfg;
            cfg.app = app.name;
            cfg.input = InputClass::Train;
            cfg.requestedThreads = 8;
            cfg.waitPolicy =
                pol == 0 ? WaitPolicy::Active : WaitPolicy::Passive;
            l_err[pol] = runExperiment(cfg).runtimeErrorPct;
        }
        na.push_back(n_act);
        np.push_back(n_pas);
        la.push_back(l_err[0]);
        lpp.push_back(l_err[1]);
        std::printf("%-22s | %12.2f %12.2f | %12.2f %12.2f\n",
                    app.name.c_str(), n_act, n_pas, l_err[0],
                    l_err[1]);
    }
    bench::printRule();
    std::printf("%-22s | %12.2f %12.2f | %12.2f %12.2f\n", "mean",
                mean(na), mean(np), mean(la), mean(lpp));
    std::printf("%-22s | %12.2f %12.2f | %12.2f %12.2f\n", "max",
                maxOf(na), maxOf(np), maxOf(la), maxOf(lpp));
    std::printf("\npaper reference: naive SimPoint averages ~25%% "
                "error (up to 68%%) under active waiting and up to "
                "20%% under passive; LoopPoint stays in low single "
                "digits.\n");
    return 0;
}
