/**
 * @file
 * Table II: SPEC CPU2017 speed application attributes (language,
 * KLOC, application area) as encoded in the workload descriptors,
 * plus the analog structural parameters this reproduction adds.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workload/descriptor.hh"

using namespace looppoint;

int
main()
{
    bench::printHeader(
        "Table II: SPEC CPU2017 speed application attributes");
    std::printf("%-22s %-8s %6s  %-28s %7s %9s\n", "application",
                "lang", "KLOC", "application area", "kernels",
                "timesteps");
    bench::printRule();
    for (const auto &app : spec2017Apps()) {
        std::printf("%-22s %-8s %6u  %-28s %7zu %9llu\n",
                    app.name.c_str(), app.language.c_str(), app.kloc,
                    app.area.c_str(), app.kernels.size(),
                    static_cast<unsigned long long>(app.timesteps));
    }
    bench::printRule();
    std::printf("\nNPB analogs:\n");
    for (const auto &app : npbApps()) {
        std::printf("%-22s %-8s %6u  %-28s %7zu %9llu\n",
                    app.name.c_str(), app.language.c_str(), app.kloc,
                    app.area.c_str(), app.kernels.size(),
                    static_cast<unsigned long long>(app.timesteps));
    }
    return 0;
}
