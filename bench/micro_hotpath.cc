/**
 * @file
 * Hot-path throughput microbenchmark: blocks/second of the per-block
 * simulation pipeline in its three modes — pure functional
 * fast-forward, fast-forward with cache/predictor warming, and
 * detailed timing simulation. Emits a machine-readable JSON file
 * (BENCH_hotpath.json) so successive PRs have a perf trajectory to
 * regress against.
 *
 * Only stable public APIs are used, so the identical source can be
 * built against an older commit to obtain a comparison baseline.
 *
 * Flags:
 *   --app=NAME      workload (default 628.pop2_s.1)
 *   --input=CLASS   test|train|ref (default test)
 *   --threads=N     simulated thread count (default 4)
 *   --reps=N        repetitions per mode; best time wins (default 3)
 *   --out=PATH      JSON output path (default BENCH_hotpath.json)
 *   --obs=on|off    arm the global tracer/metrics during measurement
 *                   (default off) so obs overhead itself can be
 *                   benchmarked; the setting is recorded in the JSON
 */

#include <cstdio>
#include <ctime>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/multicore.hh"
#include "workload/descriptor.hh"

using namespace looppoint;
using namespace looppoint::bench;

namespace {

struct ModeResult
{
    std::string name;
    uint64_t blocks = 0;
    uint64_t instructions = 0;
    double seconds = 0.0;

    double
    blocksPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(blocks) / seconds
                             : 0.0;
    }

    double
    instrsPerSec() const
    {
        return seconds > 0.0
                   ? static_cast<double>(instructions) / seconds
                   : 0.0;
    }
};

uint64_t
totalBlocksExecuted(const ExecutionEngine &eng, const Program &prog)
{
    uint64_t total = 0;
    for (BlockId b = 0; b < prog.numBlocks(); ++b)
        total += eng.blockExecCount(b);
    return total;
}

/** Run one mode `reps` times; keep the fastest repetition. */
template <typename RunFn>
ModeResult
measure(const std::string &name, uint32_t reps, const Program &prog,
        const ExecConfig &exec_cfg, const SimConfig &sim_cfg,
        RunFn &&run)
{
    ModeResult r;
    r.name = name;
    for (uint32_t rep = 0; rep < reps; ++rep) {
        MulticoreSim sim(prog, exec_cfg, sim_cfg);
        WallTimer timer;
        run(sim);
        double t = timer.seconds();
        uint64_t blocks = totalBlocksExecuted(sim.engine(), prog);
        uint64_t instrs = sim.engine().globalIcount();
        if (rep == 0 || t < r.seconds) {
            r.seconds = t;
            r.blocks = blocks;
            r.instructions = instrs;
        }
    }
    return r;
}

InputClass
parseInput(const std::string &s)
{
    if (s == "train")
        return InputClass::Train;
    if (s == "ref")
        return InputClass::Ref;
    return InputClass::Test;
}

/**
 * Short git SHA of the working tree, or "unknown" when git (or the
 * .git directory) is unavailable — bench results stay comparable
 * across checkouts without making git a hard dependency.
 */
std::string
gitSha()
{
    std::FILE *p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
    if (!p)
        return "unknown";
    char buf[64] = {0};
    std::string sha;
    if (std::fgets(buf, sizeof(buf), p)) {
        sha = buf;
        while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
            sha.pop_back();
    }
    ::pclose(p);
    return sha.empty() ? "unknown" : sha;
}

/** UTC wall-clock timestamp, ISO 8601, for bench provenance. */
std::string
utcTimestamp()
{
    std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    gmtime_r(&now, &tm_utc);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    return buf;
}

void
writeJson(std::FILE *f, const std::string &app,
          const std::string &input, uint32_t threads, uint32_t reps,
          bool obs, const std::vector<ModeResult> &modes)
{
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"benchmark\": \"micro_hotpath\",\n");
    std::fprintf(f, "  \"git_sha\": \"%s\",\n", gitSha().c_str());
    std::fprintf(f, "  \"timestamp\": \"%s\",\n",
                 utcTimestamp().c_str());
    std::fprintf(f, "  \"app\": \"%s\",\n", app.c_str());
    std::fprintf(f, "  \"input\": \"%s\",\n", input.c_str());
    std::fprintf(f, "  \"threads\": %u,\n", threads);
    std::fprintf(f, "  \"jobs\": 1,\n");
    std::fprintf(f, "  \"reps\": %u,\n", reps);
    std::fprintf(f, "  \"obs\": \"%s\",\n", obs ? "on" : "off");
    std::fprintf(f, "  \"modes\": {\n");
    for (size_t i = 0; i < modes.size(); ++i) {
        const ModeResult &m = modes[i];
        std::fprintf(f,
                     "    \"%s\": {\"blocks\": %llu, "
                     "\"instructions\": %llu, \"seconds\": %.6f, "
                     "\"blocks_per_sec\": %.1f, "
                     "\"instrs_per_sec\": %.1f}%s\n",
                     m.name.c_str(),
                     static_cast<unsigned long long>(m.blocks),
                     static_cast<unsigned long long>(m.instructions),
                     m.seconds, m.blocksPerSec(), m.instrsPerSec(),
                     i + 1 < modes.size() ? "," : "");
    }
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    const std::string app_name = args.get("app", "628.pop2_s.1");
    const std::string input_name = args.get("input", "test");
    const uint32_t threads =
        static_cast<uint32_t>(args.getU64("threads", 4));
    const uint32_t reps = static_cast<uint32_t>(args.getU64("reps", 3));
    const std::string out_path = args.get("out", "BENCH_hotpath.json");
    const bool obs = args.get("obs", "off") == "on";
    if (obs) {
        Tracer::global().setEnabled(true);
        MetricsRegistry::global().setEnabled(true);
    }

    const AppDescriptor &app = findApp(app_name);
    Program prog = generateProgram(app, parseInput(input_name));

    ExecConfig exec_cfg;
    exec_cfg.numThreads = app.effectiveThreads(threads);
    SimConfig sim_cfg;

    printHeader("micro_hotpath: per-block pipeline throughput");
    std::printf("app=%s input=%s threads=%u reps=%u obs=%s\n",
                app_name.c_str(), input_name.c_str(),
                exec_cfg.numThreads, reps, obs ? "on" : "off");

    std::vector<ModeResult> modes;
    modes.push_back(measure("fastforward", reps, prog, exec_cfg,
                            sim_cfg, [](MulticoreSim &sim) {
                                sim.fastForward({}, /*warm=*/false);
                            }));
    modes.push_back(measure("warmup", reps, prog, exec_cfg, sim_cfg,
                            [](MulticoreSim &sim) {
                                sim.fastForward({}, /*warm=*/true);
                            }));
    modes.push_back(measure("detailed", reps, prog, exec_cfg, sim_cfg,
                            [](MulticoreSim &sim) {
                                sim.runDetailed();
                            }));

    std::printf("%-12s %14s %16s %12s %16s\n", "mode", "blocks",
                "instructions", "seconds", "blocks/sec");
    printRule();
    for (const ModeResult &m : modes)
        std::printf("%-12s %14llu %16llu %12.4f %16.1f\n",
                    m.name.c_str(),
                    static_cast<unsigned long long>(m.blocks),
                    static_cast<unsigned long long>(m.instructions),
                    m.seconds, m.blocksPerSec());

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f) {
        logError("cannot write %s", out_path.c_str());
        return 1;
    }
    writeJson(f, app_name, input_name, exec_cfg.numThreads, reps, obs,
              modes);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
