/**
 * @file
 * Fig. 1: approximate time to evaluate each benchmark suite under
 * different methodologies, assuming 100 KIPS detailed simulation and
 * infinite parallel resources (the longest region bounds the result),
 * 8 threads, passive wait policy.
 *
 * Methodologies compared, as in the paper:
 *   - full detailed simulation of the whole application;
 *   - time-based sampling (whole app visited: a small detailed duty
 *     cycle plus functional fast-forward at ~10 MIPS);
 *   - BarrierPoint (longest inter-barrier region bounds the sample);
 *   - LoopPoint (longest loop-bounded slice bounds the sample).
 *
 * Sizes are computed analytically from the workload structure. Our
 * analog instruction budgets are ~1000x below the real suites, so a
 * scale factor (--scale, default 1000) converts to paper-equivalent
 * magnitudes for readability.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "workload/descriptor.hh"

using namespace looppoint;

namespace {

constexpr double kDetailedIps = 100e3; // 100 KIPS (paper assumption)
constexpr double kFunctionalIps = 1e6;
constexpr double kTbsDutyCycle = 0.10;

struct SuiteRow
{
    const char *label;
    const std::vector<AppDescriptor> *apps;
    InputClass input;
};

double
maxInterBarrierInstrs(const Program &p)
{
    uint64_t largest = 0;
    for (uint32_t kidx : p.runList) {
        const LoweredKernel &k = p.kernels[kidx];
        largest = std::max(largest,
                           p.bodyInstrCount(k) * k.parallelIters);
    }
    return static_cast<double>(largest);
}

std::string
humanTime(double seconds)
{
    if (seconds < 3600)
        return strFormat("%7.1f h ", seconds / 3600.0);
    if (seconds < 86400.0 * 365)
        return strFormat("%7.1f d ", seconds / 86400.0);
    return strFormat("%7.1f yr", seconds / (86400.0 * 365));
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const double scale =
        static_cast<double>(args.getU64("scale", 1000));
    const uint64_t slice_global = 8 * 100'000; // N x sliceSizePerThread

    setQuiet(true);
    bench::printHeader("Fig. 1: approximate evaluation time per "
                       "methodology (8 threads, passive, 100 KIPS "
                       "detailed; longest region bounds the time)");
    std::printf("(instruction budgets scaled x%.0f to "
                "paper-equivalent sizes)\n\n", scale);
    std::printf("%-16s | %11s | %11s | %11s | %11s\n", "suite/input",
                "detailed", "time-based", "BarrierPt", "LoopPoint");
    bench::printRule();

    const SuiteRow rows[] = {
        {"SPEC2017 train", &spec2017Apps(), InputClass::Train},
        {"SPEC2017 ref", &spec2017Apps(), InputClass::Ref},
        {"NPB C", &npbApps(), InputClass::NpbC},
        {"NPB D", &npbApps(), InputClass::NpbD},
    };

    for (const auto &row : rows) {
        double worst_full = 0, worst_tbs = 0, worst_bp = 0,
               worst_lp = 0;
        for (const auto &app : *row.apps) {
            Program p = generateProgram(app, row.input);
            double total =
                static_cast<double>(p.estimateWorkInstrs(8)) * scale;
            double full_t = total / kDetailedIps;
            double tbs_t = total * kTbsDutyCycle / kDetailedIps +
                           total * (1 - kTbsDutyCycle) / kFunctionalIps;
            double bp_region = maxInterBarrierInstrs(p) * scale;
            double bp_t = std::min(bp_region, total) / kDetailedIps;
            double lp_region = std::min(
                static_cast<double>(slice_global) * scale, total);
            double lp_t = lp_region / kDetailedIps;
            worst_full = std::max(worst_full, full_t);
            worst_tbs = std::max(worst_tbs, tbs_t);
            worst_bp = std::max(worst_bp, bp_t);
            worst_lp = std::max(worst_lp, lp_t);
        }
        std::printf("%-16s | %11s | %11s | %11s | %11s\n", row.label,
                    humanTime(worst_full).c_str(),
                    humanTime(worst_tbs).c_str(),
                    humanTime(worst_bp).c_str(),
                    humanTime(worst_lp).c_str());
    }
    bench::printRule();
    std::printf("\npaper reference: detailed/TBS/BarrierPoint all "
                "approach months-years on SPEC ref and NPB D (the "
                "longest inter-barrier region in 638.imagick is ~the "
                "whole program), while LoopPoint stays bounded by one "
                "slice (~N x 100M instructions).\n");
    return 0;
}
