/**
 * @file
 * Microarchitecture-portability ablation (generalizing Fig. 5b): the
 * LoopPoint analysis is microarchitecture-independent, so the *same*
 * looppoints should predict runtime accurately across different target
 * machines. One analysis per app; region + full simulation on five
 * targets: the Table I baseline, an in-order core, a quarter-size L2,
 * a slow memory, and a machine with an aggressive L2 prefetcher.
 *
 * Flags: --app=NAME, --quick
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "core/looppoint.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "workload/descriptor.hh"

using namespace looppoint;

namespace {

struct Target
{
    const char *name;
    SimConfig cfg;
};

std::vector<Target>
makeTargets()
{
    std::vector<Target> targets;
    targets.push_back({"baseline", SimConfig{}});
    {
        SimConfig c;
        c.coreType = CoreType::InOrder;
        c.dispatchWidth = 2;
        targets.push_back({"in-order", c});
    }
    {
        SimConfig c;
        c.l2.sizeBytes = 64 * 1024;
        targets.push_back({"L2/4", c});
    }
    {
        SimConfig c;
        c.memLatency = 400;
        targets.push_back({"slow-mem", c});
    }
    {
        SimConfig c;
        c.prefetchDegree = 2;
        targets.push_back({"prefetch", c});
    }
    return targets;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const bool quick = args.has("quick");
    const bool full = args.has("full");
    const std::string only = args.get("app");
    setQuiet(true);

    auto targets = makeTargets();
    bench::printHeader("Microarchitecture portability: one analysis, "
                       "runtime error% on five targets (train, 8 "
                       "threads, passive)");
    std::printf("%-22s |", "application");
    for (const auto &t : targets)
        std::printf(" %9s", t.name);
    std::printf("\n");
    bench::printRule();

    std::vector<std::vector<double>> errs(targets.size());
    size_t count = 0;
    for (const auto &app : spec2017Apps()) {
        if (!only.empty() && app.name != only)
            continue;
        if ((quick || !full) && count >= 3)
            break; // default subset; --full runs all fourteen
        ++count;

        const uint32_t threads = app.effectiveThreads(8);
        Program prog = generateProgram(app, InputClass::Train);
        LoopPointOptions opts;
        opts.numThreads = threads;
        LoopPointPipeline pipe(prog, opts);
        LoopPointResult lp = pipe.analyze(); // once per app

        std::printf("%-22s |", app.name.c_str());
        for (size_t t = 0; t < targets.size(); ++t) {
            auto ckpt =
                pipe.simulateRegionsCheckpointed(lp, targets[t].cfg);
            MetricPrediction pred = extrapolateMetrics(
                lp, ckpt.regionMetrics, targets[t].cfg);
            SimMetrics full = pipe.simulateFull(targets[t].cfg);
            double err = absRelErrorPct(pred.runtimeSeconds,
                                        full.runtimeSeconds);
            errs[t].push_back(err);
            std::printf(" %9.2f", err);
        }
        std::printf("\n");
    }
    bench::printRule();
    std::printf("%-22s |", "mean");
    for (const auto &column : errs)
        std::printf(" %9.2f", mean(column));
    std::printf("\n\npaper reference: Fig. 5b shows looppoints chosen "
                "on architecture-level features stay accurate on an "
                "in-order core; this sweep extends the claim to cache, "
                "memory, and prefetcher changes.\n");
    return 0;
}
