/**
 * @file
 * Fig. 6: LoopPoint runtime prediction error for the NPB analogs
 * (class C, passive wait policy) at 8 and 16 threads. Applications are
 * profiled separately per thread count, as in the paper.
 *
 * Flags: --app=NAME, --quick
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "util/logging.hh"
#include "util/stats.hh"

using namespace looppoint;

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const bool quick = args.has("quick");
    const bool full = args.has("full");
    const std::string only = args.get("app");

    setQuiet(true);
    bench::printHeader("Fig. 6: NPB (class C, passive) runtime "
                       "prediction error, 8 vs 16 threads");
    std::printf("%-12s | %12s %12s | %6s %6s\n", "application",
                "err% (8t)", "err% (16t)", "k(8)", "k(16)");
    bench::printRule();

    bench::CsvFile csv(args, "fig6");
    csv.row({"application", "err_8t_pct", "err_16t_pct", "k_8t",
             "k_16t"});

    std::vector<double> errs8, errs16;
    size_t count = 0;
    for (const auto &app : npbApps()) {
        if (!only.empty() && app.name != only)
            continue;
        if (quick && count >= 3)
            break;
        if (!full && !quick && count >= 5)
            break; // default subset; --full runs all nine
        ++count;

        double err[2];
        uint32_t k[2];
        uint32_t idx = 0;
        for (uint32_t threads : {8u, 16u}) {
            ExperimentConfig cfg;
            cfg.app = app.name;
            cfg.input = InputClass::NpbC;
            cfg.requestedThreads = threads;
            cfg.waitPolicy = WaitPolicy::Passive;
            ExperimentResult r = runExperiment(cfg);
            err[idx] = r.runtimeErrorPct;
            k[idx] = r.analysis.chosenK;
            ++idx;
        }
        csv.row({app.name, bench::fmt(err[0]), bench::fmt(err[1]),
                 std::to_string(k[0]), std::to_string(k[1])});
        errs8.push_back(err[0]);
        errs16.push_back(err[1]);
        std::printf("%-12s | %12.2f %12.2f | %6u %6u\n",
                    app.name.c_str(), err[0], err[1], k[0], k[1]);
    }
    bench::printRule();
    std::printf("%-12s | %12.2f %12.2f |\n", "mean", mean(errs8),
                mean(errs16));
    std::printf("\npaper reference: 2.87%% mean abs error at 8 "
                "threads, 1.78%% at 16 threads.\n");
    return 0;
}
