/**
 * @file
 * Execution-backend throughput microbenchmark: regions/second of the
 * checkpointed region-simulation phase under the in-process thread
 * pool vs the multi-process region farm, at equal worker counts.
 * Emits a machine-readable JSON file (BENCH_backend.json) so
 * successive PRs have a perf trajectory to regress against.
 *
 * The interesting comparison is dispatch overhead: the pool must
 * deep-copy the warm simulator state once per region to hand it to a
 * worker thread, while the procs coordinator exports that state into
 * a persistent worker's shared-memory arena and ships the functional
 * remainder in a state frame, paying a framed-socket protocol tax
 * instead of the in-process copy. Both backends must produce
 * bit-identical metrics (verified here on every repetition).
 *
 * Flags:
 *   --app=NAME      workload (default spec-roms-1 -> 654.roms_s.1)
 *   --input=CLASS   test|train|ref (default train)
 *   --threads=N     simulated thread count (default 4)
 *   --workers=N     host workers for both backends (default 2)
 *   --reps=N        repetitions per backend; best time wins (default 3)
 *   --out=PATH      JSON output path (default BENCH_backend.json)
 */

#include <cstdio>
#include <ctime>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/looppoint.hh"
#include "sim/config.hh"
#include "workload/descriptor.hh"

using namespace looppoint;
using namespace looppoint::bench;

namespace {

struct BackendResult
{
    std::string name;
    size_t regions = 0;
    double phaseSeconds = 0.0;   ///< best rep, warming included
    double regionSeconds = 0.0;  ///< sum of region sim walls, best rep
    uint32_t workerDeaths = 0;
    uint32_t workerRespawns = 0;

    double
    regionsPerSec() const
    {
        return phaseSeconds > 0.0
                   ? static_cast<double>(regions) / phaseSeconds
                   : 0.0;
    }
};

InputClass
parseInput(const std::string &s)
{
    if (s == "train")
        return InputClass::Train;
    if (s == "ref")
        return InputClass::Ref;
    return InputClass::Test;
}

std::string
gitSha()
{
    std::FILE *p =
        ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
    if (!p)
        return "unknown";
    char buf[64] = {0};
    std::string sha;
    if (std::fgets(buf, sizeof(buf), p)) {
        sha = buf;
        while (!sha.empty() &&
               (sha.back() == '\n' || sha.back() == '\r'))
            sha.pop_back();
    }
    ::pclose(p);
    return sha.empty() ? "unknown" : sha;
}

std::string
utcTimestamp()
{
    std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    gmtime_r(&now, &tm_utc);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    return buf;
}

/** Fingerprint of a run's simulated results; must match across
 * backends or the numbers being compared are meaningless. */
std::string
metricsFingerprint(const LoopPointPipeline::CheckpointedSimResult &r)
{
    std::string fp;
    char buf[256];
    for (const SimMetrics &m : r.regionMetrics) {
        std::snprintf(buf, sizeof(buf),
                      "%llu:%llu:%llu:%.17g:%llu:%llu;",
                      static_cast<unsigned long long>(m.cycles),
                      static_cast<unsigned long long>(m.instructions),
                      static_cast<unsigned long long>(
                          m.filteredInstructions),
                      m.runtimeSeconds,
                      static_cast<unsigned long long>(m.l2Misses),
                      static_cast<unsigned long long>(
                          m.branchMispredicts));
        fp += buf;
    }
    return fp;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    const std::string app_name = args.get("app", "654.roms_s.1");
    const std::string input_name = args.get("input", "train");
    const uint32_t threads =
        static_cast<uint32_t>(args.getU64("threads", 4));
    const uint32_t workers =
        static_cast<uint32_t>(args.getU64("workers", 2));
    const uint32_t reps =
        static_cast<uint32_t>(args.getU64("reps", 3));
    const std::string out_path =
        args.get("out", "BENCH_backend.json");

    const AppDescriptor &app = findApp(app_name);
    Program prog = generateProgram(app, parseInput(input_name));
    LoopPointOptions opts;
    opts.numThreads = app.effectiveThreads(threads);
    if (parseInput(input_name) == InputClass::Test)
        opts.sliceSizePerThread = 25'000;
    LoopPointPipeline pipeline(prog, opts);
    LoopPointResult lp = pipeline.analyze();

    printHeader("micro_backend: region-farm dispatch throughput");
    std::printf("app=%s input=%s threads=%u workers=%u reps=%u "
                "regions=%zu\n",
                app_name.c_str(), input_name.c_str(),
                opts.numThreads, workers, reps, lp.regions.size());

    std::string fingerprint;
    std::vector<BackendResult> results;
    for (ExecBackendKind kind :
         {ExecBackendKind::Pool, ExecBackendKind::Procs}) {
        BackendResult r;
        r.name = execBackendName(kind);
        for (uint32_t rep = 0; rep < reps; ++rep) {
            SimConfig sim;
            sim.backend = kind;
            sim.jobs = workers;
            auto ckpt = pipeline.simulateRegionsCheckpointed(
                lp, sim, /*constrained=*/false, nullptr);
            if (ckpt.coverage != 1.0)
                fatal("%s run lost coverage (%.4f)", r.name.c_str(),
                      ckpt.coverage);
            const std::string fp = metricsFingerprint(ckpt);
            if (fingerprint.empty())
                fingerprint = fp;
            else if (fp != fingerprint)
                fatal("%s rep %u diverged from the first run's "
                      "metrics — backends are not bit-identical",
                      r.name.c_str(), rep);
            double region_s = 0.0;
            for (double w : ckpt.regionWallSeconds)
                region_s += w;
            if (rep == 0 || ckpt.phaseWallSeconds < r.phaseSeconds) {
                r.regions = ckpt.regionMetrics.size();
                r.phaseSeconds = ckpt.phaseWallSeconds;
                r.regionSeconds = region_s;
                r.workerDeaths = ckpt.workerDeaths;
                r.workerRespawns = ckpt.workerRespawns;
            }
        }
        results.push_back(r);
    }

    std::printf("%-8s %8s %12s %12s %14s\n", "backend", "regions",
                "phase s", "region s", "regions/sec");
    for (const BackendResult &r : results)
        std::printf("%-8s %8zu %12.4f %12.4f %14.2f\n",
                    r.name.c_str(), r.regions, r.phaseSeconds,
                    r.regionSeconds, r.regionsPerSec());

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f)
        fatal("cannot write '%s'", out_path.c_str());
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"benchmark\": \"micro_backend\",\n");
    std::fprintf(f, "  \"git_sha\": \"%s\",\n", gitSha().c_str());
    std::fprintf(f, "  \"timestamp\": \"%s\",\n",
                 utcTimestamp().c_str());
    std::fprintf(f, "  \"app\": \"%s\",\n", app_name.c_str());
    std::fprintf(f, "  \"input\": \"%s\",\n", input_name.c_str());
    std::fprintf(f, "  \"threads\": %u,\n", opts.numThreads);
    std::fprintf(f, "  \"workers\": %u,\n", workers);
    std::fprintf(f, "  \"reps\": %u,\n", reps);
    std::fprintf(f, "  \"bit_identical\": true,\n");
    std::fprintf(f, "  \"modes\": {\n");
    for (size_t i = 0; i < results.size(); ++i) {
        const BackendResult &r = results[i];
        std::fprintf(f,
                     "    \"%s\": {\"regions\": %zu, "
                     "\"phase_seconds\": %.6f, "
                     "\"region_seconds\": %.6f, "
                     "\"regions_per_sec\": %.2f, "
                     "\"worker_deaths\": %u, "
                     "\"worker_respawns\": %u}%s\n",
                     r.name.c_str(), r.regions, r.phaseSeconds,
                     r.regionSeconds, r.regionsPerSec(),
                     r.workerDeaths, r.workerRespawns,
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
