/**
 * @file
 * Fig. 3: per-thread share of the filtered instruction count on a
 * per-slice basis, demonstrating homogeneous (e.g. 603.bwaves) vs.
 * non-homogeneous (657.xz_s.2) thread behavior. The per-thread
 * concatenated BBVs capture exactly this signal for clustering.
 *
 * Flags: --app=NAME (default prints bwaves and xz_s.2)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/looppoint.hh"
#include "util/logging.hh"
#include "workload/descriptor.hh"

using namespace looppoint;

namespace {

void
printApp(const std::string &name)
{
    const AppDescriptor &app = findApp(name);
    const uint32_t threads = app.effectiveThreads(8);
    Program prog = generateProgram(app, InputClass::Train);

    LoopPointOptions opts;
    opts.numThreads = threads;
    opts.waitPolicy = WaitPolicy::Passive;
    LoopPointPipeline pipe(prog, opts);
    LoopPointResult lp = pipe.analyze();

    std::printf("\n%s (%u threads): per-thread %% of slice filtered "
                "instructions\n", name.c_str(), threads);
    std::printf("%-6s", "slice");
    for (uint32_t t = 0; t < threads; ++t)
        std::printf(" %6s%u", "t", t);
    std::printf("\n");
    looppoint::bench::printRule(8 + 8 * threads);
    for (const auto &s : lp.slices) {
        if (s.filteredIcount == 0)
            continue;
        std::printf("%-6llu",
                    static_cast<unsigned long long>(s.index));
        for (uint32_t t = 0; t < threads; ++t) {
            double share = 100.0 *
                           static_cast<double>(
                               s.threadFilteredIcount[t]) /
                           static_cast<double>(s.filteredIcount);
            std::printf(" %6.1f%%", share);
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    setQuiet(true);
    bench::printHeader("Fig. 3: per-slice per-thread instruction "
                       "share (train inputs)");
    std::string only = args.get("app");
    if (!only.empty()) {
        printApp(only);
    } else {
        printApp("603.bwaves_s.1"); // homogeneous
        printApp("657.xz_s.2");     // non-homogeneous (paper example)
    }
    std::printf("\npaper reference: 657.xz_s.2 shows strongly "
                "non-homogeneous per-thread shares; regular OpenMP "
                "codes split work evenly.\n");
    return 0;
}
