/**
 * @file
 * Representative-selection ablation: is the SimPoint machinery
 * (clustering + closest-to-centroid selection) actually earning its
 * keep, or would any K slices do? Compares three policies at the same
 * region count K (the BIC-chosen k):
 *
 *   centroid — cluster and take the slice closest to each centroid,
 *              weighted by cluster work (LoopPoint / SimPoint);
 *   random   — K slices drawn uniformly, each weighted total/K
 *              (simple random sampling);
 *   stride   — every (n/K)-th slice, weighted total/K (systematic
 *              sampling).
 *
 * On strongly periodic workloads all three do fine; the clustering
 * advantage shows on phase-heterogeneous apps (657.xz_s.2, wrf),
 * where random/stride picks mis-weight the phases.
 *
 * Flags: --app=NAME, --quick, --full
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "core/looppoint.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "workload/descriptor.hh"

using namespace looppoint;

namespace {

/**
 * Replace the analysis's regions with K hand-picked slices weighted
 * uniformly by work, preserving everything else.
 */
LoopPointResult
withPickedSlices(const LoopPointResult &lp,
                 const std::vector<uint32_t> &picks)
{
    LoopPointResult out = lp;
    out.regions.clear();
    uint64_t picked_work = 0;
    for (uint32_t idx : picks)
        picked_work += lp.slices[idx].filteredIcount;
    LP_ASSERT(picked_work > 0);
    double scale = static_cast<double>(lp.totalFilteredIcount) /
                   static_cast<double>(picked_work);
    for (uint32_t c = 0; c < picks.size(); ++c) {
        const SliceRecord &s = lp.slices[picks[c]];
        if (s.filteredIcount == 0)
            continue;
        LoopPointRegion r;
        r.cluster = c;
        r.sliceIndex = picks[c];
        r.start = s.start;
        r.end = s.end;
        r.filteredIcount = s.filteredIcount;
        // Uniform sampling estimator: every picked slice stands for
        // an equal share of the total work.
        r.multiplier = scale;
        out.regions.push_back(r);
    }
    return out;
}

double
errorOf(LoopPointPipeline &pipe, const LoopPointResult &lp,
        double full_runtime, const SimConfig &sim_cfg)
{
    auto ckpt = pipe.simulateRegionsCheckpointed(lp, sim_cfg);
    MetricPrediction pred =
        extrapolateMetrics(lp, ckpt.regionMetrics, sim_cfg);
    return absRelErrorPct(pred.runtimeSeconds, full_runtime);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const bool quick = args.has("quick");
    const bool full = args.has("full");
    const std::string only = args.get("app");
    setQuiet(true);

    bench::printHeader("Representative-selection ablation: runtime "
                       "error% at equal region count K (train, 8 "
                       "threads, passive)");
    std::printf("%-22s | %4s | %10s | %10s | %10s\n", "application",
                "K", "centroid", "random", "stride");
    bench::printRule();

    std::vector<double> e_cen, e_rnd, e_str;
    // Phase-heterogeneous apps where selection quality matters most.
    const char *defaults[] = {"657.xz_s.2", "621.wrf_s.1",
                              "627.cam4_s.1"};
    std::vector<std::string> names;
    if (!only.empty()) {
        names.push_back(only);
    } else if (quick || !full) {
        names.assign(std::begin(defaults), std::end(defaults));
    } else {
        for (const auto &app : spec2017Apps())
            names.push_back(app.name);
    }

    for (const auto &name : names) {
        const AppDescriptor &app = findApp(name);
        const uint32_t threads = app.effectiveThreads(8);
        Program prog = generateProgram(app, InputClass::Train);
        LoopPointOptions opts;
        opts.numThreads = threads;
        LoopPointPipeline pipe(prog, opts);
        LoopPointResult lp = pipe.analyze();
        SimConfig sim_cfg;
        double full_runtime =
            pipe.simulateFull(sim_cfg).runtimeSeconds;

        const uint32_t k =
            static_cast<uint32_t>(lp.regions.size());
        const uint32_t n = static_cast<uint32_t>(lp.slices.size());

        double err_centroid = errorOf(pipe, lp, full_runtime, sim_cfg);

        // Random picks (deterministic RNG, non-empty slices only).
        Rng rng(hashString(name));
        std::vector<uint32_t> random_picks;
        int guard = 1000;
        while (random_picks.size() < k && guard-- > 0) {
            auto idx = static_cast<uint32_t>(rng.nextBounded(n));
            if (lp.slices[idx].filteredIcount == 0)
                continue;
            if (std::find(random_picks.begin(), random_picks.end(),
                          idx) == random_picks.end())
                random_picks.push_back(idx);
        }
        LoopPointResult lp_rnd = withPickedSlices(lp, random_picks);
        double err_random =
            errorOf(pipe, lp_rnd, full_runtime, sim_cfg);

        // Systematic (strided) picks.
        std::vector<uint32_t> stride_picks;
        for (uint32_t c = 0; c < k; ++c) {
            uint32_t idx = (c * n) / k + (n / (2 * k));
            idx = std::min(idx, n - 1);
            if (lp.slices[idx].filteredIcount > 0)
                stride_picks.push_back(idx);
        }
        if (stride_picks.empty())
            stride_picks.push_back(0);
        LoopPointResult lp_str = withPickedSlices(lp, stride_picks);
        double err_stride =
            errorOf(pipe, lp_str, full_runtime, sim_cfg);

        e_cen.push_back(err_centroid);
        e_rnd.push_back(err_random);
        e_str.push_back(err_stride);
        std::printf("%-22s | %4u | %10.2f | %10.2f | %10.2f\n",
                    name.c_str(), k, err_centroid, err_random,
                    err_stride);
    }
    bench::printRule();
    std::printf("%-22s | %4s | %10.2f | %10.2f | %10.2f\n", "mean", "",
                mean(e_cen), mean(e_rnd), mean(e_str));
    std::printf("\nexpected shape: the clustered, work-weighted "
                "selection is at least as accurate as uniform "
                "sampling everywhere and clearly better on "
                "phase-heterogeneous applications.\n");
    return 0;
}
