/**
 * @file
 * Artifact-store memoization microbenchmark: end-to-end wall time of a
 * uarch sweep (the paper's central use case — one analysis, many
 * machine configs) with and without the content-addressed store.
 * Emits BENCH_store.json so successive PRs have a perf trajectory.
 *
 * Four scenarios over the same N-preset sweep:
 *   cold        no store at all — every point pays record + profile +
 *               cluster + region sim + full reference sim
 *   populate    empty store — same work plus publish overhead; points
 *               after the first already reuse the analysis prefix
 *   warm        identical sweep again — every stage of every point is
 *               served from the store (the "never recompute" claim;
 *               must be >= 3x faster than cold and bit-identical)
 *   extend      one new preset on the warm store — analysis reused,
 *               only the two simulation stages run (the incremental
 *               campaign case)
 *
 * Flags:
 *   --app=NAME      workload (default 654.roms_s.1)
 *   --input=CLASS   test|train|ref (default train)
 *   --threads=N     simulated thread count (default 4)
 *   --store=DIR     store directory (default /tmp/lp_bench_store;
 *                   wiped at startup)
 *   --out=PATH      JSON output path (default BENCH_store.json)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "sim/config.hh"

using namespace looppoint;
using namespace looppoint::bench;

namespace {

const std::vector<std::string> kSweep = {"baseline", "big-l2",
                                         "small-rob", "slow-mem"};
const std::string kExtendPreset = "prefetch";

struct StageHits
{
    uint32_t record = 0;
    uint32_t profile = 0;
    uint32_t cluster = 0;
    uint32_t sim = 0;
    uint32_t fullsim = 0;
};

struct Scenario
{
    std::string name;
    uint32_t points = 0;
    double wallSeconds = 0.0;
    StageHits hits;
    StoreStats store;
};

InputClass
parseInput(const std::string &s)
{
    if (s == "train")
        return InputClass::Train;
    if (s == "ref")
        return InputClass::Ref;
    return InputClass::Test;
}

std::string
gitSha()
{
    std::FILE *p =
        ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
    if (!p)
        return "unknown";
    char buf[64] = {0};
    std::string sha;
    if (std::fgets(buf, sizeof(buf), p)) {
        sha = buf;
        while (!sha.empty() &&
               (sha.back() == '\n' || sha.back() == '\r'))
            sha.pop_back();
    }
    ::pclose(p);
    return sha.empty() ? "unknown" : sha;
}

std::string
utcTimestamp()
{
    std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    gmtime_r(&now, &tm_utc);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    return buf;
}

/** Everything result-bearing in one string: region metrics, the Eq.1
 * extrapolation, and the reference run. Warm must equal cold. */
std::string
resultFingerprint(const ExperimentResult &res)
{
    std::string fp;
    char buf[256];
    auto add = [&](const SimMetrics &m) {
        std::snprintf(buf, sizeof(buf), "%llu:%llu:%llu:%.17g;",
                      static_cast<unsigned long long>(m.cycles),
                      static_cast<unsigned long long>(m.instructions),
                      static_cast<unsigned long long>(
                          m.filteredInstructions),
                      m.runtimeSeconds);
        fp += buf;
    };
    for (const SimMetrics &m : res.regionMetrics)
        add(m);
    std::snprintf(buf, sizeof(buf), "pred=%.17g:%.17g:%.17g;",
                  res.predicted.runtimeSeconds, res.predicted.cycles,
                  res.predicted.instructions);
    fp += buf;
    add(res.fullSim);
    std::snprintf(buf, sizeof(buf), "err=%.17g;", res.runtimeErrorPct);
    fp += buf;
    return fp;
}

/** Run one sweep point; accumulate its stage-hit flags. */
ExperimentResult
runPoint(const std::string &app, InputClass input, uint32_t threads,
         const std::string &store_dir, const std::string &preset,
         Scenario &sc)
{
    ExperimentConfig cfg;
    cfg.app = app;
    cfg.input = input;
    cfg.requestedThreads = threads;
    cfg.storeDir = store_dir;
    if (input == InputClass::Test)
        cfg.loopPoint.sliceSizePerThread = 25'000;
    applyUarchPreset(cfg.sim, preset);
    ExperimentResult res = runExperiment(cfg);
    if (res.coverage != 1.0)
        fatal("%s/%s lost coverage (%.4f)", sc.name.c_str(),
              preset.c_str(), res.coverage);
    sc.points++;
    sc.hits.record += res.analysis.stageHashes.recordHit;
    sc.hits.profile += res.analysis.stageHashes.profileHit;
    sc.hits.cluster += res.analysis.stageHashes.clusterHit;
    sc.hits.sim += res.simStageHit;
    sc.hits.fullsim += res.fullSimHit;
    sc.store.hits += res.storeStats.hits;
    sc.store.misses += res.storeStats.misses;
    sc.store.publishes += res.storeStats.publishes;
    sc.store.bytesStored += res.storeStats.bytesStored;
    sc.store.bytesDeduped += res.storeStats.bytesDeduped;
    sc.store.bytesRead += res.storeStats.bytesRead;
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    const std::string app = args.get("app", "654.roms_s.1");
    const std::string input_name = args.get("input", "train");
    const uint32_t threads =
        static_cast<uint32_t>(args.getU64("threads", 4));
    const std::string store_dir =
        args.get("store", "/tmp/lp_bench_store");
    const std::string out_path = args.get("out", "BENCH_store.json");
    const InputClass input = parseInput(input_name);

    if (std::system(("rm -rf '" + store_dir + "'").c_str()) != 0)
        fatal("cannot clear store dir '%s'", store_dir.c_str());

    printHeader("micro_store: uarch sweep with stage memoization");
    std::printf("app=%s input=%s threads=%u sweep=%zu presets "
                "store=%s\n",
                app.c_str(), input_name.c_str(), threads,
                kSweep.size(), store_dir.c_str());

    auto timeScenario = [&](Scenario &sc, const std::string &dir,
                            const std::vector<std::string> &presets,
                            std::vector<std::string> *fps) {
        auto t0 = std::chrono::steady_clock::now();
        for (const std::string &preset : presets) {
            ExperimentResult res =
                runPoint(app, input, threads, dir, preset, sc);
            if (fps)
                fps->push_back(resultFingerprint(res));
        }
        sc.wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
    };

    std::vector<std::string> cold_fps, warm_fps;
    Scenario cold, populate, warm, extend;
    cold.name = "cold";
    populate.name = "populate";
    warm.name = "warm";
    extend.name = "extend";
    timeScenario(cold, /*dir=*/"", kSweep, &cold_fps);
    timeScenario(populate, store_dir, kSweep, nullptr);
    timeScenario(warm, store_dir, kSweep, &warm_fps);
    timeScenario(extend, store_dir, {kExtendPreset}, nullptr);

    if (warm_fps != cold_fps)
        fatal("warm sweep results diverged from cold — the store is "
              "not bit-faithful");
    if (warm.store.misses != 0)
        fatal("warm sweep recomputed %llu stage(s)",
              static_cast<unsigned long long>(warm.store.misses));
    if (extend.hits.cluster != 1)
        fatal("extend point did not reuse the cached analysis");

    const double speedup = warm.wallSeconds > 0.0
                               ? cold.wallSeconds / warm.wallSeconds
                               : 0.0;
    // The analysis prefix is shared sweep-wide, so an incremental
    // point only pays for the two simulation stages; this is the
    // fraction of a cold point that work represents.
    const double sim_fraction =
        cold.wallSeconds > 0.0
            ? extend.wallSeconds /
                  (cold.wallSeconds / kSweep.size())
            : 0.0;

    std::printf("%-10s %8s %10s %28s\n", "scenario", "points",
                "wall s", "stage hits r/p/c/s/f");
    auto row = [](const Scenario &s) {
        std::printf("%-10s %8u %10.3f %20u/%u/%u/%u/%u\n",
                    s.name.c_str(), s.points, s.wallSeconds,
                    s.hits.record, s.hits.profile, s.hits.cluster,
                    s.hits.sim, s.hits.fullsim);
    };
    row(cold);
    row(populate);
    row(warm);
    row(extend);
    std::printf("warm speedup    : %.1fx (gate: >= 3x)\n", speedup);
    std::printf("extend cost     : %.0f%% of a cold point\n",
                sim_fraction * 100.0);
    if (speedup < 3.0)
        fatal("warm sweep only %.2fx faster than cold", speedup);

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f)
        fatal("cannot write '%s'", out_path.c_str());
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"benchmark\": \"micro_store\",\n");
    std::fprintf(f, "  \"git_sha\": \"%s\",\n", gitSha().c_str());
    std::fprintf(f, "  \"timestamp\": \"%s\",\n",
                 utcTimestamp().c_str());
    std::fprintf(f, "  \"app\": \"%s\",\n", app.c_str());
    std::fprintf(f, "  \"input\": \"%s\",\n", input_name.c_str());
    std::fprintf(f, "  \"threads\": %u,\n", threads);
    std::fprintf(f, "  \"sweep_points\": %zu,\n", kSweep.size());
    std::fprintf(f, "  \"bit_identical\": true,\n");
    std::fprintf(f, "  \"warm_speedup\": %.2f,\n", speedup);
    std::fprintf(f, "  \"extend_cost_of_cold_point\": %.4f,\n",
                 sim_fraction);
    std::fprintf(f, "  \"scenarios\": {\n");
    const Scenario *scenarios[] = {&cold, &populate, &warm, &extend};
    for (size_t i = 0; i < 4; ++i) {
        const Scenario &s = *scenarios[i];
        std::fprintf(
            f,
            "    \"%s\": {\"points\": %u, \"wall_seconds\": %.6f, "
            "\"stage_hits\": {\"record\": %u, \"profile\": %u, "
            "\"cluster\": %u, \"sim\": %u, \"fullsim\": %u}, "
            "\"store\": {\"hits\": %llu, \"misses\": %llu, "
            "\"publishes\": %llu, \"bytes_stored\": %llu, "
            "\"bytes_deduped\": %llu, \"bytes_read\": %llu}}%s\n",
            s.name.c_str(), s.points, s.wallSeconds, s.hits.record,
            s.hits.profile, s.hits.cluster, s.hits.sim,
            s.hits.fullsim,
            static_cast<unsigned long long>(s.store.hits),
            static_cast<unsigned long long>(s.store.misses),
            static_cast<unsigned long long>(s.store.publishes),
            static_cast<unsigned long long>(s.store.bytesStored),
            static_cast<unsigned long long>(s.store.bytesDeduped),
            static_cast<unsigned long long>(s.store.bytesRead),
            i + 1 < 4 ? "," : "");
    }
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
