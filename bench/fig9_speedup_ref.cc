/**
 * @file
 * Fig. 9: LoopPoint vs. BarrierPoint *theoretical* speedup (serial and
 * parallel) for the SPEC CPU2017 speed analogs with ref inputs and the
 * passive wait policy.
 *
 * As in the paper, ref inputs are analyzed but never fully simulated
 * (a full detailed ref run is impractical by construction); the
 * figures compare the reduction in work each methodology achieves.
 * BarrierPoint collapses on barrier-poor applications (638.imagick,
 * 657.xz) whose inter-barrier regions are as large as the program.
 *
 * Flags: --app=NAME, --quick, --train (use train instead of ref)
 */

#include <cstdio>
#include <vector>

#include "baselines/barrierpoint.hh"
#include "bench_util.hh"
#include "core/looppoint.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "workload/descriptor.hh"

using namespace looppoint;

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const bool quick = args.has("quick");
    const std::string only = args.get("app");
    const InputClass input =
        args.has("train") ? InputClass::Train : InputClass::Ref;

    setQuiet(true);
    bench::printHeader(
        "Fig. 9: LoopPoint vs BarrierPoint theoretical speedup "
        "(SPEC CPU2017 ref, passive, 8 threads)");
    std::printf("%-22s | %9s %9s | %9s %9s | %6s %6s\n", "application",
                "LP-ser", "LP-par", "BP-ser", "BP-par", "LP-k",
                "BP-k");
    bench::printRule();

    bench::CsvFile csv(args, "fig9");
    csv.row({"application", "looppoint_serial", "looppoint_parallel",
             "barrierpoint_serial", "barrierpoint_parallel"});

    std::vector<double> lp_par, bp_par;
    size_t count = 0;
    for (const auto &app : spec2017Apps()) {
        if (!only.empty() && app.name != only)
            continue;
        if (quick && count >= 4)
            break;
        ++count;

        const uint32_t threads = app.effectiveThreads(8);
        Program prog = generateProgram(app, input);

        LoopPointOptions lp_opts;
        lp_opts.numThreads = threads;
        lp_opts.waitPolicy = WaitPolicy::Passive;
        LoopPointPipeline pipe(prog, lp_opts);
        LoopPointResult lp = pipe.analyze();

        BarrierPointOptions bp_opts;
        bp_opts.numThreads = threads;
        bp_opts.waitPolicy = WaitPolicy::Passive;
        BarrierPointResult bp = analyzeBarrierPoint(prog, bp_opts);

        std::printf("%-22s | %9.1f %9.1f | %9.1f %9.1f | %6u %6u\n",
                    app.name.c_str(), lp.theoreticalSerialSpeedup(),
                    lp.theoreticalParallelSpeedup(),
                    bp.theoreticalSerialSpeedup(),
                    bp.theoreticalParallelSpeedup(), lp.chosenK,
                    bp.chosenK);
        csv.row({app.name, bench::fmt(lp.theoreticalSerialSpeedup()),
                 bench::fmt(lp.theoreticalParallelSpeedup()),
                 bench::fmt(bp.theoreticalSerialSpeedup()),
                 bench::fmt(bp.theoreticalParallelSpeedup())});
        lp_par.push_back(lp.theoreticalParallelSpeedup());
        bp_par.push_back(bp.theoreticalParallelSpeedup());
    }
    bench::printRule();
    std::printf("%-22s | %9s %9.1f | %9s %9.1f |\n", "geomean parallel",
                "", geoMean(lp_par), "", geoMean(bp_par));
    std::printf("\npaper reference (ref): LoopPoint parallel speedup "
                "avg 11,587x / max 31,253x; BarrierPoint lags or fails "
                "on imagick and xz. Budgets here are ~1000x smaller; "
                "the LoopPoint-vs-BarrierPoint ordering is the "
                "reproduced result.\n");
    return 0;
}
