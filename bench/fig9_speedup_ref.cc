/**
 * @file
 * Fig. 9: LoopPoint vs. BarrierPoint *theoretical* speedup (serial and
 * parallel) for the SPEC CPU2017 speed analogs with ref inputs and the
 * passive wait policy.
 *
 * As in the paper, ref inputs are analyzed but never fully simulated
 * (a full detailed ref run is impractical by construction); the
 * figures compare the reduction in work each methodology achieves.
 * BarrierPoint collapses on barrier-poor applications (638.imagick,
 * 657.xz) whose inter-barrier regions are as large as the program.
 *
 * Flags: --app=NAME, --quick, --train (use train instead of ref),
 * --jobs=N (host workers for the clustering sweep; default hardware
 * concurrency). The host-par column is the measured host-parallel
 * self-relative speedup of the BIC model-selection sweep — on ref
 * inputs the analysis *is* the cost, so that sweep is the hot path.
 */

#include <cstdio>
#include <vector>

#include "baselines/barrierpoint.hh"
#include "bench_util.hh"
#include "core/looppoint.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/thread_pool.hh"
#include "workload/descriptor.hh"

using namespace looppoint;

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const bool quick = args.has("quick");
    const std::string only = args.get("app");
    const InputClass input =
        args.has("train") ? InputClass::Train : InputClass::Ref;
    const uint32_t jobs = static_cast<uint32_t>(
        args.getU64("jobs", ThreadPool::defaultWorkers()));

    setQuiet(true);
    bench::printHeader(
        "Fig. 9: LoopPoint vs BarrierPoint theoretical speedup "
        "(SPEC CPU2017 ref, passive, 8 threads)");
    std::printf("%-22s | %9s %9s | %9s %9s | %8s | %6s %6s\n",
                "application", "LP-ser", "LP-par", "BP-ser", "BP-par",
                "host-par", "LP-k", "BP-k");
    bench::printRule();

    bench::CsvFile csv(args, "fig9");
    csv.row({"application", "looppoint_serial", "looppoint_parallel",
             "barrierpoint_serial", "barrierpoint_parallel",
             "cluster_host_parallel", "jobs"});

    std::vector<double> lp_par, bp_par, host_par;
    size_t count = 0;
    for (const auto &app : spec2017Apps()) {
        if (!only.empty() && app.name != only)
            continue;
        if (quick && count >= 4)
            break;
        ++count;

        const uint32_t threads = app.effectiveThreads(8);
        Program prog = generateProgram(app, input);

        LoopPointOptions lp_opts;
        lp_opts.numThreads = threads;
        lp_opts.waitPolicy = WaitPolicy::Passive;
        lp_opts.jobs = jobs;
        LoopPointPipeline pipe(prog, lp_opts);
        LoopPointResult lp = pipe.analyze();
        const double cluster_speedup = bench::hostSpeedup(
            lp.clusterSerialSeconds, lp.clusterWallSeconds);

        BarrierPointOptions bp_opts;
        bp_opts.numThreads = threads;
        bp_opts.waitPolicy = WaitPolicy::Passive;
        BarrierPointResult bp = analyzeBarrierPoint(prog, bp_opts);

        std::printf("%-22s | %9.1f %9.1f | %9.1f %9.1f | %7.2fx | "
                    "%6u %6u\n",
                    app.name.c_str(), lp.theoreticalSerialSpeedup(),
                    lp.theoreticalParallelSpeedup(),
                    bp.theoreticalSerialSpeedup(),
                    bp.theoreticalParallelSpeedup(), cluster_speedup,
                    lp.chosenK, bp.chosenK);
        csv.row({app.name, bench::fmt(lp.theoreticalSerialSpeedup()),
                 bench::fmt(lp.theoreticalParallelSpeedup()),
                 bench::fmt(bp.theoreticalSerialSpeedup()),
                 bench::fmt(bp.theoreticalParallelSpeedup()),
                 bench::fmt(cluster_speedup), std::to_string(jobs)});
        lp_par.push_back(lp.theoreticalParallelSpeedup());
        bp_par.push_back(bp.theoreticalParallelSpeedup());
        if (cluster_speedup > 0.0)
            host_par.push_back(cluster_speedup);
    }
    bench::printRule();
    std::printf("%-22s | %9s %9.1f | %9s %9.1f | %7.2fx |\n",
                "geomean parallel", "", geoMean(lp_par), "",
                geoMean(bp_par), geoMean(host_par));
    std::printf("\npaper reference (ref): LoopPoint parallel speedup "
                "avg 11,587x / max 31,253x; BarrierPoint lags or fails "
                "on imagick and xz. Budgets here are ~1000x smaller; "
                "the LoopPoint-vs-BarrierPoint ordering is the "
                "reproduced result. host-par is the measured BIC-sweep "
                "speedup on %u host worker(s).\n",
                jobs);
    return 0;
}
