/**
 * @file
 * Table I: the primary characteristics of the simulated system (the
 * defaults of SimConfig), plus the in-order variant used in Fig. 5b.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/config.hh"

using namespace looppoint;

int
main()
{
    bench::printHeader("Table I: simulated system characteristics");
    SimConfig cfg;
    std::printf("%s", cfg.describe().c_str());
    std::printf("\nIn-order variant (Fig. 5b):\n");
    SimConfig inorder;
    inorder.coreType = CoreType::InOrder;
    inorder.dispatchWidth = 2;
    std::printf("%s", inorder.describe().c_str());
    std::printf("\npaper reference: 8/16 cores, Gainestown-like, "
                "2.66 GHz, 128-entry ROB, Pentium M branch predictor, "
                "32K L1s / 256K L2 / 8M L3, LRU.\n");
    return 0;
}
