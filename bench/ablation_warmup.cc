/**
 * @file
 * Warmup ablation (paper Section III-F): the paper warms each region
 * from the start of the application "to minimize warmup error". This
 * sweep quantifies what that buys by simulating the same looppoints
 * with three warmup policies:
 *
 *   full  — functional warming from the application start (paper);
 *   limited(W) — warm only the last ~W instructions before the region;
 *   none  — cold caches and predictors at the region start.
 *
 * Flags: --app=NAME (default 619.lbm_s.1 — memory-bound, most
 * warmup-sensitive), --quick
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "core/looppoint.hh"
#include "sim/multicore.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "workload/descriptor.hh"

using namespace looppoint;

namespace {

enum class Warmup
{
    Full,
    Limited,
    None
};

/**
 * Simulate one region under a warmup policy. For Limited, the
 * unwarmed prefix length is estimated from the profile's slice sizes
 * (slices tile the execution).
 */
SimMetrics
simulateWithWarmup(const Program &prog, const LoopPointOptions &opts,
                   const LoopPointResult &lp,
                   const LoopPointRegion &region, Warmup mode,
                   uint64_t warm_instrs)
{
    ExecConfig cfg;
    cfg.numThreads = opts.numThreads;
    cfg.waitPolicy = opts.waitPolicy;
    cfg.seed = opts.seed;
    SimConfig sim_cfg;
    MulticoreSim sim(prog, cfg, sim_cfg);

    auto pc_index = buildPcIndex(prog);
    BlockId start_block = kInvalidBlock;
    if (region.start.pc != 0)
        start_block = pc_index.at(region.start.pc);

    if (start_block != kInvalidBlock && region.start.count > 0) {
        auto at_start = [&] {
            return sim.engine().blockExecCount(start_block) >=
                   region.start.count;
        };
        switch (mode) {
          case Warmup::Full:
            sim.fastForward(at_start, /*warm=*/true);
            break;
          case Warmup::None:
            sim.fastForward(at_start, /*warm=*/false);
            break;
          case Warmup::Limited: {
            // Estimated global icount at region start = sum of the
            // preceding slices' total instructions.
            uint64_t start_icount = 0;
            for (uint32_t i = 0; i < region.sliceIndex; ++i)
                start_icount += lp.slices[i].totalIcount;
            uint64_t cold_until = start_icount > warm_instrs
                                      ? start_icount - warm_instrs
                                      : 0;
            sim.fastForward(
                [&] {
                    return sim.engine().globalIcount() >= cold_until ||
                           at_start();
                },
                /*warm=*/false);
            sim.fastForward(at_start, /*warm=*/true);
            break;
          }
        }
    }
    if (region.end.pc == 0)
        return sim.runDetailed();
    BlockId end_block = pc_index.at(region.end.pc);
    return sim.runDetailed([&] {
        return sim.engine().blockExecCount(end_block) >=
               region.end.count;
    });
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    setQuiet(true);
    std::vector<std::string> apps;
    std::string only = args.get("app");
    if (!only.empty()) {
        apps.push_back(only);
    } else {
        apps = {"619.lbm_s.1", "603.bwaves_s.1"};
        if (!args.has("quick"))
            apps.push_back("649.fotonik3d_s.1");
    }

    bench::printHeader("Warmup ablation: runtime prediction error% "
                       "per warmup policy (train, 8 threads, passive)");
    std::printf("%-22s | %10s | %12s | %10s\n", "application", "full",
                "limited-400K", "none");
    bench::printRule();

    for (const auto &name : apps) {
        const AppDescriptor &app = findApp(name);
        const uint32_t threads = app.effectiveThreads(8);
        Program prog = generateProgram(app, InputClass::Train);
        LoopPointOptions opts;
        opts.numThreads = threads;
        LoopPointPipeline pipe(prog, opts);
        LoopPointResult lp = pipe.analyze();
        SimConfig sim_cfg;
        SimMetrics full_run = pipe.simulateFull(sim_cfg);

        std::printf("%-22s |", name.c_str());
        for (Warmup mode :
             {Warmup::Full, Warmup::Limited, Warmup::None}) {
            std::vector<SimMetrics> metrics;
            for (const auto &region : lp.regions)
                metrics.push_back(simulateWithWarmup(
                    prog, opts, lp, region, mode, 400'000));
            MetricPrediction pred =
                extrapolateMetrics(lp, metrics, sim_cfg);
            double err = absRelErrorPct(pred.runtimeSeconds,
                                        full_run.runtimeSeconds);
            if (mode == Warmup::Limited)
                std::printf(" %12.2f |", err);
            else if (mode == Warmup::Full)
                std::printf(" %10.2f |", err);
            else
                std::printf(" %10.2f", err);
        }
        std::printf("\n");
    }
    bench::printRule();
    std::printf("\nexpected shape: full warmup (the paper's choice) is "
                "the most accurate; cold regions overestimate runtime "
                "on memory-bound apps; a few hundred kilo-instructions "
                "of warming recovers most of the gap.\n");
    return 0;
}
