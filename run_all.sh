#!/bin/bash
# Regenerates test_output.txt and bench_output.txt (the paper-reproduction
# evidence files). Runs every bench binary with default arguments.
cd "$(dirname "$0")"
ctest --test-dir build 2>&1 | tee test_output.txt
{
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo
    echo "================================================================"
    echo "== $b"
    echo "================================================================"
    timeout 1800 "$b" 2>/dev/null
done
echo
echo "================================================================"
echo "== build/bench/fig5_accuracy --inorder --quick   (Fig. 5b)"
echo "================================================================"
timeout 1800 build/bench/fig5_accuracy --inorder --quick 2>/dev/null
echo
echo "================================================================"
echo "== build/bench/fig5_accuracy --constrained --quick   (Sec. V-A.1)"
echo "================================================================"
timeout 1800 build/bench/fig5_accuracy --constrained --quick 2>/dev/null
} > bench_output.txt 2>&1
echo ALL_DONE >> bench_output.txt
