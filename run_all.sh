#!/bin/bash
# Regenerates test_output.txt and bench_output.txt (the paper-reproduction
# evidence files). Runs every bench binary with default arguments.
#
# With --tsan (or LOOPPOINT_TSAN=1) the tier-1 test suite is first
# built and run under ThreadSanitizer (-DLOOPPOINT_SANITIZE=thread in
# build-tsan/) to validate the work-stealing thread pool and the
# host-parallel phases; the regular suite and benches then run from
# the unsanitized build as usual.
cd "$(dirname "$0")"

if [ "$1" = "--tsan" ] || [ "${LOOPPOINT_TSAN:-0}" = "1" ]; then
    echo "== tier-1 under ThreadSanitizer (build-tsan) =="
    cmake -B build-tsan -S . -DLOOPPOINT_SANITIZE=thread || exit 1
    cmake --build build-tsan -j || exit 1
    ctest --test-dir build-tsan --output-on-failure 2>&1 \
        | tee tsan_output.txt || exit 1
fi

ctest --test-dir build 2>&1 | tee test_output.txt
{
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo
    echo "================================================================"
    echo "== $b"
    echo "================================================================"
    timeout 1800 "$b" 2>/dev/null
done
echo
echo "================================================================"
echo "== build/bench/fig5_accuracy --inorder --quick   (Fig. 5b)"
echo "================================================================"
timeout 1800 build/bench/fig5_accuracy --inorder --quick 2>/dev/null
echo
echo "================================================================"
echo "== build/bench/fig5_accuracy --constrained --quick   (Sec. V-A.1)"
echo "================================================================"
timeout 1800 build/bench/fig5_accuracy --constrained --quick 2>/dev/null
} > bench_output.txt 2>&1
echo ALL_DONE >> bench_output.txt
