#!/bin/bash
# Regenerates test_output.txt and bench_output.txt (the paper-reproduction
# evidence files). Runs every bench binary with default arguments.
#
# With --tsan (or LOOPPOINT_TSAN=1) the tier-1 test suite is first
# built and run under ThreadSanitizer (-DLOOPPOINT_SANITIZE=thread in
# build-tsan/) to validate the work-stealing thread pool and the
# host-parallel phases; the regular suite and benches then run from
# the unsanitized build as usual.
#
# With --ubsan the tier-1 suite is built and run under
# UndefinedBehaviorSanitizer (-DLOOPPOINT_SANITIZE=undefined,
# -fno-sanitize-recover so any finding is a hard failure) in
# build-ubsan/, then the lint + race-check analyses are exercised
# end-to-end on the demo workload.
#
# With --tidy the clang-tidy checks from .clang-tidy are run over
# src/ and tools/ using the compile_commands.json of a fresh
# build-tidy/ configure. Skipped with a notice when clang-tidy is not
# installed.
#
# With --bench-smoke only the hot-path microbenchmark is built (Release,
# build-rel/) and run on the small test input, and the emitted
# BENCH_hotpath.json is validated for well-formedness — a fast CI gate
# that the measurement harness itself still works.
#
# With --obs-smoke the observability layer is exercised end to end: a
# short traced pipeline run emits a Chrome-trace JSON + metrics JSON
# that lp_report --check validates, then micro_hotpath (Release,
# build-rel/, obs disabled) is compared against the committed
# BENCH_hotpath.json baseline to assert the disabled-obs overhead
# stays within 2%.
#
# With --dist-smoke the multi-process region farm is exercised end to
# end: spec-roms-1 train runs under --backend=procs --workers=4 and
# its region results are diffed bit-exact against the pool backend,
# then a worker-kill fault is replayed under procs to check the
# respawn/retry path recovers full coverage, and the Dist test
# subset runs.
#
# With --store-smoke the artifact store is exercised end to end: a
# cold run populates the store, a warm re-run must be served with zero
# misses and bit-identical output on both execution backends, a
# corrupted object must be evicted and transparently recomputed, and a
# two-point lp_campaign must reuse the analysis prefix and skip
# completed jobs on re-invocation.
#
# With --campaign-smoke the campaign supervisor is exercised end to
# end: a small matrix runs with injected job faults (crash, wedge,
# corrupt-result), the supervisor is SIGTERM'd mid-campaign with a job
# wedged, and a restart must finish the sweep with exactly-once
# accounting (one ok per job in the journal) and a campaign.json
# byte-identical to an uninterrupted reference run; a watermark-GC
# pass over the shared store must fire without evicting live objects.
#
# With --analysis-smoke the analysis suite is exercised end to end:
# the full pass set (lint + race + lockset/deadlock + audit) runs over
# every bundled workload and must report zero warning/error findings,
# then a store + journal fixture is deliberately corrupted and the
# audit must flag exactly the injected defects.
#
# With --faults the fault-tolerance layer is exercised under
# AddressSanitizer (-DLOOPPOINT_SANITIZE=address in build-asan/): the
# corruption/journal/fault-injection test subset runs first, then
# run_looppoint is driven end to end through the degraded-run +
# journal-resume scenario with its exit-code contract checked at each
# step (0 clean, 1 degraded, 3 injected crash).
cd "$(dirname "$0")"

if [ "$1" = "--faults" ]; then
    echo "== fault-tolerance suite under AddressSanitizer (build-asan) =="
    cmake -B build-asan -S . -DLOOPPOINT_SANITIZE=address \
        -DLOOPPOINT_WERROR=ON || exit 1
    cmake --build build-asan -j || exit 1
    ctest --test-dir build-asan --output-on-failure -R \
        'Checksum|FaultPlan|ArtifactIntegrity|HostileInput|LegacyFormat|NoFatalGuard|RunKeyCodec|Journal|FaultPipeline|Sha1|Fingerprint|ArtifactStore|StageKeys|StorePipeline' \
        2>&1 | tee faults_output.txt
    [ "${PIPESTATUS[0]}" = 0 ] || exit 1

    echo "== CLI end to end: degraded run, crash, bit-identical resume =="
    lp=build-asan/tools/run_looppoint
    common="-p spec-roms-1 -i train --no-fullsim -j 4"
    journal=$(mktemp -u /tmp/lp_faults.XXXXXX.journal)
    out=/tmp/lp_faults
    # shellcheck disable=SC2086
    {
        $lp $common > "$out.clean.txt"
        rc=$?
        [ $rc -eq 0 ] || { echo "faults FAIL: clean run exited $rc (want 0)"; exit 1; }

        $lp $common --journal="$journal" \
            --inject-fault='sim:region=3,kind=throw;sim:region=7,kind=diverge' \
            > "$out.degraded.txt"
        rc=$?
        [ $rc -eq 1 ] || { echo "faults FAIL: degraded run exited $rc (want 1)"; exit 1; }
        grep -q 'coverage       : 0\.' "$out.degraded.txt" || {
            echo "faults FAIL: degraded run did not report reduced coverage"; exit 1; }

        $lp $common --inject-fault='sim:region=5,kind=kill' \
            --journal="$journal.kill" > "$out.killed.txt" 2>&1
        rc=$?
        [ $rc -eq 3 ] || { echo "faults FAIL: killed run exited $rc (want 3)"; exit 1; }

        $lp $common --region-retries=1 \
            --inject-fault='sim:region=3,kind=throw,times=1' > "$out.retried.txt"
        rc=$?
        [ $rc -eq 0 ] || { echo "faults FAIL: retried run exited $rc (want 0)"; exit 1; }
        grep -q 'coverage       : 1\.0000' "$out.retried.txt" || {
            echo "faults FAIL: retry did not restore full coverage"; exit 1; }

        $lp $common --resume="$journal" > "$out.resumed.txt"
        rc=$?
        [ $rc -eq 0 ] || { echo "faults FAIL: resumed run exited $rc (want 0)"; exit 1; }
        grep -q 'region(s) reused' "$out.resumed.txt" || {
            echo "faults FAIL: resumed run reused nothing from the journal"; exit 1; }
        # Bit-identical modulo the journal line and host wall-clock times.
        if ! diff <(grep -vE '^(journal|host-parallel)' "$out.clean.txt") \
                  <(grep -vE '^(journal|host-parallel)' "$out.resumed.txt"); then
            echo "faults FAIL: resumed output differs from the clean run"; exit 1
        fi

        $lp $common --inject-fault='sim:region=bogus' > /dev/null 2>&1
        rc=$?
        [ $rc -eq 2 ] || { echo "faults FAIL: malformed fault spec exited $rc (want 2)"; exit 1; }
    } || exit 1
    rm -f "$journal" "$journal.kill"
    echo "faults OK"
    exit 0
fi

if [ "$1" = "--dist-smoke" ]; then
    echo "== dist smoke: procs backend vs pool, bit-exact =="
    cmake -B build -S . || exit 1
    cmake --build build -j --target run_looppoint lp_tests || exit 1
    lp=build/tools/run_looppoint
    common="-p spec-roms-1 -i train --no-fullsim -j 4"
    out=/tmp/lp_dist
    # shellcheck disable=SC2086
    {
        $lp $common --backend=pool > "$out.pool.txt"
        rc=$?
        [ $rc -eq 0 ] || { echo "dist-smoke FAIL: pool run exited $rc (want 0)"; exit 1; }

        $lp $common --backend=procs > "$out.procs.txt"
        rc=$?
        [ $rc -eq 0 ] || { echo "dist-smoke FAIL: procs run exited $rc (want 0)"; exit 1; }
        grep -q 'backend        : procs' "$out.procs.txt" || {
            echo "dist-smoke FAIL: procs run did not report the procs backend"; exit 1; }
        # Bit-exact modulo the lines that name the backend or measure
        # host wall-clock.
        if ! diff <(grep -vE '^(journal|host-parallel|backend|actual speedup)' "$out.pool.txt") \
                  <(grep -vE '^(journal|host-parallel|backend|actual speedup)' "$out.procs.txt"); then
            echo "dist-smoke FAIL: procs results differ from pool"; exit 1
        fi

        # A SIGKILL'd worker must be respawned and the region retried
        # back to full coverage, with results still bit-exact.
        $lp $common --backend=procs --region-retries=1 \
            --inject-fault='sim:region=0,kind=kill,times=1' > "$out.killed.txt"
        rc=$?
        [ $rc -eq 0 ] || { echo "dist-smoke FAIL: worker-kill run exited $rc (want 0)"; exit 1; }
        grep -q 'coverage       : 1\.0000' "$out.killed.txt" || {
            echo "dist-smoke FAIL: worker kill did not recover full coverage"; exit 1; }
        grep -q '1 death(s), 1 respawn(s)' "$out.killed.txt" || {
            echo "dist-smoke FAIL: worker kill did not report a death + respawn"; exit 1; }
        # The recovery leaves a warning-severity finding (and its
        # section's blank line) in the report; every simulated metric
        # must still match the pool.
        filter='^(journal|host-parallel|backend|actual speedup|warning \[fault-tolerance\]|analysis |$)'
        if ! diff <(grep -vE "$filter" "$out.pool.txt") \
                  <(grep -vE "$filter" "$out.killed.txt"); then
            echo "dist-smoke FAIL: worker-kill results differ from pool"; exit 1
        fi
    } || exit 1

    echo "== dist smoke: wire-protocol + backend test subset =="
    ctest --test-dir build --output-on-failure -R \
        'DistFrame|DistProtocol|DistWorkers|ProcsBackend|PoolBackend' || exit 1
    rm -f "$out".*.txt
    echo "dist-smoke OK"
    exit 0
fi

if [ "$1" = "--store-smoke" ]; then
    echo "== store smoke: cold populate, warm zero-recompute =="
    cmake -B build -S . || exit 1
    cmake --build build -j --target run_looppoint lp_store_tool \
        lp_campaign_tool lp_report lp_tests || exit 1
    lp=build/tools/run_looppoint
    common="-p spec-roms-1 -i train -j 4"
    store=$(mktemp -d /tmp/lp_store_smoke.XXXXXX)
    out=/tmp/lp_store_smoke
    # Lines that legitimately differ between runs: host wall-clock,
    # store hit accounting, and the eviction notice of the corruption
    # scenario. Every simulated number must survive the filter.
    filter='^(journal|host-parallel|backend|actual speedup|store|error: artifact store)'
    # shellcheck disable=SC2086
    {
        $lp $common --store="$store/s" > "$out.cold.txt"
        rc=$?
        [ $rc -eq 0 ] || { echo "store-smoke FAIL: cold run exited $rc (want 0)"; exit 1; }
        grep -q 'store          : 0 hit(s)' "$out.cold.txt" || {
            echo "store-smoke FAIL: cold run was not a clean miss"; exit 1; }

        $lp $common --store="$store/s" > "$out.warm.txt"
        rc=$?
        [ $rc -eq 0 ] || { echo "store-smoke FAIL: warm run exited $rc (want 0)"; exit 1; }
        grep -q '0 miss(es), 0 publish(es), 0 failed, 0 corrupt, regions cached, fullsim cached' \
            "$out.warm.txt" || {
            echo "store-smoke FAIL: warm run recomputed something"; exit 1; }
        if ! diff <(grep -vE "$filter" "$out.cold.txt") \
                  <(grep -vE "$filter" "$out.warm.txt"); then
            echo "store-smoke FAIL: warm output differs from cold"; exit 1
        fi

        # The store is backend-agnostic: a procs-backend rerun is
        # served from the pool-populated store, bit-identically.
        $lp $common --store="$store/s" --backend=procs > "$out.procs.txt"
        rc=$?
        [ $rc -eq 0 ] || { echo "store-smoke FAIL: procs run exited $rc (want 0)"; exit 1; }
        grep -q 'regions cached' "$out.procs.txt" || {
            echo "store-smoke FAIL: procs run missed the pool-written entries"; exit 1; }
        if ! diff <(grep -vE "$filter" "$out.cold.txt") \
                  <(grep -vE "$filter" "$out.procs.txt"); then
            echo "store-smoke FAIL: procs output differs from cold"; exit 1
        fi

        echo "== store smoke: corrupt object evicted + recomputed =="
        obj=$(ls "$store/s/objects" | head -1)
        printf 'X' | dd of="$store/s/objects/$obj" bs=1 seek=20 \
            conv=notrunc 2>/dev/null
        build/tools/lp_store verify "$store/s" > /dev/null 2>&1
        [ $? -eq 1 ] || { echo "store-smoke FAIL: verify missed the corruption"; exit 1; }
        $lp $common --store="$store/s" > "$out.heal.txt" 2>&1
        rc=$?
        [ $rc -eq 0 ] || { echo "store-smoke FAIL: recovery run exited $rc (want 0)"; exit 1; }
        grep -q 'evicting corrupt object' "$out.heal.txt" || {
            echo "store-smoke FAIL: recovery run did not report the eviction"; exit 1; }
        if ! diff <(grep -vE "$filter" "$out.cold.txt") \
                  <(grep -vE "$filter" "$out.heal.txt"); then
            echo "store-smoke FAIL: recovered output differs from cold"; exit 1
        fi
        build/tools/lp_store verify "$store/s" > /dev/null || {
            echo "store-smoke FAIL: store still corrupt after recovery"; exit 1; }

        echo "== store smoke: two-point campaign, incremental re-run =="
        camp="$store/campaign"
        build/tools/lp_campaign --apps=spec-roms-1 --inputs=train \
            --threads=4 --uarch=baseline,big-l2 --out="$camp" \
            --store="$store/s" > "$out.camp.txt"
        rc=$?
        [ $rc -eq 0 ] || { echo "store-smoke FAIL: campaign exited $rc (want 0)"; exit 1; }
        [ "$(grep -c '^\[run \]' "$out.camp.txt")" = 2 ] || {
            echo "store-smoke FAIL: campaign did not run 2 jobs"; exit 1; }
        build/tools/lp_campaign --apps=spec-roms-1 --inputs=train \
            --threads=4 --uarch=baseline,big-l2 --out="$camp" \
            --store="$store/s" > "$out.camp2.txt"
        rc=$?
        [ $rc -eq 0 ] || { echo "store-smoke FAIL: campaign re-run exited $rc (want 0)"; exit 1; }
        [ "$(grep -c 'already done' "$out.camp2.txt")" = 2 ] || {
            echo "store-smoke FAIL: campaign re-run did not skip done jobs"; exit 1; }
        build/tools/lp_report --campaign="$camp" > "$out.report.txt" || {
            echo "store-smoke FAIL: lp_report --campaign failed"; exit 1; }
        grep -q 'hit rate' "$out.report.txt" || {
            echo "store-smoke FAIL: campaign report lacks store aggregates"; exit 1; }
    } || exit 1

    echo "== store smoke: store test subset =="
    ctest --test-dir build --output-on-failure -R \
        'Sha1|Fingerprint|ArtifactStore|StageKeys|StorePipeline' || exit 1
    rm -rf "$store" "$out".*.txt
    echo "store-smoke OK"
    exit 0
fi

if [ "$1" = "--campaign-smoke" ]; then
    echo "== campaign smoke: supervised matrix, injected job faults =="
    cmake -B build -S . || exit 1
    cmake --build build -j --target lp_campaign_tool lp_report lp_tests || exit 1
    camp=$(mktemp -d /tmp/lp_campaign_smoke.XXXXXX)
    out=/tmp/lp_campaign_smoke
    matrix="--apps=demo-matrix-1 --inputs=test --threads=2,4 \
        --uarch=baseline,big-l2 --no-fullsim \
        --backoff-base=0.05 --backoff-cap=0.2"
    norm() {
        sed -E -e 's/"wallSeconds": [0-9.eE+-]+/"wallSeconds": 0/g' \
               -e 's/"attempts": [0-9]+/"attempts": 0/g' \
               -e 's/"store": "[^"]*"/"store": "STORE"/' "$1"
    }
    # shellcheck disable=SC2086
    {
        # Reference: the same matrix, uninterrupted and fault-free.
        build/tools/lp_campaign $matrix --out="$camp/ref" \
            --store="$camp/ref/store" > "$out.ref.txt"
        rc=$?
        [ $rc -eq 0 ] || { echo "campaign-smoke FAIL: reference run exited $rc (want 0)"; exit 1; }
        [ "$(grep -c '^\[run \]' "$out.ref.txt")" = 4 ] || {
            echo "campaign-smoke FAIL: reference run did not launch 4 jobs"; exit 1; }

        # Supervised run: job 0 crashes once, job 2 publishes a corrupt
        # result once (both must cost one attempt each), and job 3
        # wedges — with the watchdog parked far out, the supervisor is
        # deterministically stuck in job 3 when we interrupt it.
        build/tools/lp_campaign $matrix --out="$camp/sup" \
            --store="$camp/sup/store" --job-timeout=60 --kill-grace=1 \
            --inject-fault='job:index=0,kind=crash,times=1;job:index=2,kind=corrupt-result,times=1;job:index=3,kind=wedge,times=1' \
            > "$out.sup1.txt" 2>&1 &
        suppid=$!
        jnl="$camp/sup/campaign.journal"
        for _ in $(seq 1 300); do
            grep -q 'idx=3 .*event=launch' "$jnl" 2>/dev/null && break
            sleep 0.1
        done
        grep -q 'idx=3 .*event=launch' "$jnl" || {
            echo "campaign-smoke FAIL: job 3 never launched"; exit 1; }
        # First signal drains; the wedged child never finishes, so the
        # second kills it, journals the kill, and flushes state.
        kill -TERM $suppid
        sleep 0.5
        kill -TERM $suppid
        wait $suppid
        rc=$?
        [ $rc -eq 4 ] || { echo "campaign-smoke FAIL: interrupted supervisor exited $rc (want 4)"; exit 1; }
        grep -q 'idx=3 .*event=killed' "$jnl" || {
            echo "campaign-smoke FAIL: the killed wedge was not journaled"; exit 1; }
        [ "$(grep -c 'event=ok' "$jnl")" = 3 ] || {
            echo "campaign-smoke FAIL: jobs 0-2 did not complete before the interrupt"; exit 1; }
        grep -q 'event=fail-transient' "$jnl" || {
            echo "campaign-smoke FAIL: the injected crash was not journaled"; exit 1; }
        grep -q 'event=stale' "$jnl" || {
            echo "campaign-smoke FAIL: the corrupt result was not detected"; exit 1; }

        # Restart (no faults: the journal identity excludes supervision
        # knobs): completed jobs are adopted, job 3 runs exactly once.
        build/tools/lp_campaign $matrix --out="$camp/sup" \
            --store="$camp/sup/store" > "$out.sup2.txt" 2>&1
        rc=$?
        [ $rc -eq 0 ] || { echo "campaign-smoke FAIL: restarted supervisor exited $rc (want 0)"; exit 1; }
        [ "$(grep -c 'complete per journal' "$out.sup2.txt")" = 3 ] || {
            echo "campaign-smoke FAIL: restart did not adopt 3 completed jobs"; exit 1; }
        # Exactly-once: one ok per job across both invocations.
        [ "$(grep -c 'event=ok' "$jnl")" = 4 ] || {
            echo "campaign-smoke FAIL: not exactly one completion per job"; exit 1; }
        for idx in 0 1 2 3; do
            [ "$(grep -c "idx=$idx .*event=ok" "$jnl")" = 1 ] || {
                echo "campaign-smoke FAIL: job $idx completed other than exactly once"; exit 1; }
        done
        # The interrupted-then-resumed campaign summary is byte-stable
        # against the uninterrupted reference (modulo wall-clock and
        # attempt counts, which faults legitimately change).
        if ! diff <(norm "$camp/ref/campaign.json") \
                  <(norm "$camp/sup/campaign.json"); then
            echo "campaign-smoke FAIL: resumed campaign.json differs from reference"; exit 1
        fi
        grep -q '"state": "done"' "$camp/sup/status.json" || {
            echo "campaign-smoke FAIL: status.json did not reach its terminal state"; exit 1; }
        build/tools/lp_report --campaign="$camp/sup" > "$out.report.txt" || {
            echo "campaign-smoke FAIL: lp_report --campaign failed"; exit 1; }
        grep -q 'supervisor (done)' "$out.report.txt" || {
            echo "campaign-smoke FAIL: report did not render the supervisor status"; exit 1; }

        # Watermark GC over the shared reference store: an absurd
        # watermark forces GC before every launch; with the default
        # target only orphans go, so the fresh campaign is still
        # served from the store afterwards.
        echo "== campaign smoke: watermark GC keeps live objects =="
        build/tools/lp_campaign $matrix --out="$camp/gc" \
            --store="$camp/ref/store" \
            --gc-watermark=1152921504606846976 > "$out.gc.txt" 2>&1
        rc=$?
        [ $rc -eq 0 ] || { echo "campaign-smoke FAIL: GC run exited $rc (want 0)"; exit 1; }
        grep -q 'running store gc' "$out.gc.txt" || {
            echo "campaign-smoke FAIL: watermark did not trigger GC"; exit 1; }
        grep -q '"record": true' \
            "$camp/gc/demo-matrix-1-test-t2-baseline/result.json" || {
            echo "campaign-smoke FAIL: GC evicted live store objects"; exit 1; }
    } || exit 1

    echo "== campaign smoke: supervisor test subset =="
    ctest --test-dir build --output-on-failure -R \
        'Supervisor|CampaignJournal|CampaignModel|Backoff|FailureClassify|JobFaults' || exit 1
    rm -rf "$camp" "$out".*.txt
    echo "campaign-smoke OK"
    exit 0
fi

if [ "$1" = "--bench-smoke" ]; then
    echo "== bench smoke: micro_hotpath (build-rel) =="
    cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release || exit 1
    cmake --build build-rel -j --target micro_hotpath || exit 1
    out=$(mktemp /tmp/bench_smoke.XXXXXX.json)
    timeout 600 build-rel/bench/micro_hotpath \
        --input=test --reps=1 --out="$out" || exit 1
    # Well-formedness: the three pipeline modes with nonzero rates.
    for key in fastforward warmup detailed; do
        grep -q "\"$key\"" "$out" || {
            echo "bench-smoke FAIL: missing mode '$key' in $out"
            exit 1
        }
    done
    if grep -q '"blocks_per_sec": 0\.0' "$out"; then
        echo "bench-smoke FAIL: zero throughput reported in $out"
        exit 1
    fi
    echo "bench-smoke OK: $out"
    exit 0
fi

if [ "$1" = "--obs-smoke" ]; then
    echo "== obs smoke: traced pipeline + lp_report --check =="
    cmake -B build -S . || exit 1
    cmake --build build -j --target run_looppoint lp_report || exit 1
    trace=$(mktemp -u /tmp/obs_smoke.XXXXXX).trace.json
    metrics=${trace%.trace.json}.metrics.json
    build/tools/run_looppoint -p spec-roms-1 -i train --no-fullsim -j 4 \
        --trace="$trace" --metrics="$metrics" > /dev/null || exit 1
    build/tools/lp_report --trace="$trace" --metrics="$metrics" --check || {
        echo "obs-smoke FAIL: lp_report --check found violations"
        exit 1
    }

    echo "== obs smoke: disabled-obs overhead vs BENCH_hotpath.json =="
    cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release || exit 1
    cmake --build build-rel -j --target micro_hotpath || exit 1
    out=$(mktemp /tmp/obs_smoke.XXXXXX.bench.json)
    timeout 600 build-rel/bench/micro_hotpath --input=train --reps=7 \
        --obs=off --out="$out" || exit 1
    python3 - "$out" BENCH_hotpath.json <<'PYEOF' || exit 1
import json, sys
new = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
worst = 0.0
for mode, b in base["modes"].items():
    n = new["modes"][mode]
    overhead = n["seconds"] / b["seconds"] - 1.0
    print("%-12s base=%.6fs new=%.6fs overhead=%+.2f%%"
          % (mode, b["seconds"], n["seconds"], overhead * 100.0))
    worst = max(worst, overhead)
if worst > 0.02:
    print("obs-smoke FAIL: disabled-obs overhead %.2f%% > 2%%"
          % (worst * 100.0))
    sys.exit(1)
PYEOF
    rm -f "$trace" "$metrics" "$out"
    echo "obs-smoke OK"
    exit 0
fi

if [ "$1" = "--analysis-smoke" ]; then
    echo "== analysis smoke: full pass set over every bundled workload =="
    cmake -B build -S . || exit 1
    cmake --build build -j --target lp_lint run_looppoint || exit 1
    progs="demo-matrix-1"
    progs="$progs,npb-bt-1,npb-cg-1,npb-ep-1,npb-ft-1,npb-is-1"
    progs="$progs,npb-lu-1,npb-mg-1,npb-sp-1,npb-ua-1"
    progs="$progs,pt-pipeline-1,pt-workqueue-1,pt-lockchain-1"
    progs="$progs,spec-bwaves-1,spec-bwaves-2,spec-cactuBSSN-1"
    progs="$progs,spec-lbm-1,spec-wrf-1,spec-cam4-1,spec-pop2-1"
    progs="$progs,spec-imagick-1,spec-nab-1,spec-nab-2"
    progs="$progs,spec-fotonik3d-1,spec-roms-1,spec-xz-1,spec-xz-2"
    out=$(mktemp /tmp/analysis_smoke.XXXXXX.txt)
    build/tools/lp_lint -p "$progs" -n 8         --race-check --lock-check --audit | tee "$out" || {
        echo "analysis-smoke FAIL: lp_lint reported errors"
        exit 1
    }
    if grep -qE '^(warning|error) \[' "$out"; then
        echo "analysis-smoke FAIL: bundled workloads must be clean"
        exit 1
    fi

    echo "== analysis smoke: corrupted store and journal fixtures =="
    dir=$(mktemp -d /tmp/analysis_smoke.XXXXXX)
    build/tools/run_looppoint -p demo-matrix-1 -n 4 --no-fullsim         --store="$dir/store" --journal="$dir/journal" --audit         > "$dir/clean.txt" || { echo "analysis-smoke FAIL: clean run"; exit 1; }
    grep -q 'audit          : 0 finding(s)' "$dir/clean.txt" || {
        echo "analysis-smoke FAIL: clean run must have 0 audit findings"
        exit 1
    }
    python3 - "$dir/store" <<'PYEOF' || exit 1
import glob, sys
obj = sorted(glob.glob(sys.argv[1] + "/objects/*"))[0]
with open(obj, "r+b") as f:
    f.seek(-1, 2)
    b = f.read(1)
    f.seek(-1, 2)
    f.write(bytes([b[0] ^ 0xFF]))
PYEOF
    sed -i 's/seed=42/seed=41/' "$dir/journal"
    build/tools/lp_lint -p demo-matrix-1 -n 4 --passes=audit         --store="$dir/store" --journal="$dir/journal"         > "$dir/bad.txt"
    rc=$?
    [ $rc -eq 1 ] || {
        echo "analysis-smoke FAIL: corrupted fixtures exited $rc (want 1)"
        exit 1
    }
    grep -q 'failed hash verification' "$dir/bad.txt" || {
        echo "analysis-smoke FAIL: corrupt store object not flagged"
        exit 1
    }
    grep -q 'journal does not load' "$dir/bad.txt" || {
        echo "analysis-smoke FAIL: corrupt journal key not flagged"
        exit 1
    }
    # Exactly the two injected defects, nothing else.
    n=$(grep -cE '^(warning|error) \[' "$dir/bad.txt")
    [ "$n" = 2 ] || {
        echo "analysis-smoke FAIL: expected exactly 2 findings, got $n"
        exit 1
    }
    rm -rf "$dir" "$out"
    echo "analysis-smoke OK"
    exit 0
fi

if [ "$1" = "--ubsan" ]; then
    echo "== tier-1 under UndefinedBehaviorSanitizer (build-ubsan) =="
    cmake -B build-ubsan -S . -DLOOPPOINT_SANITIZE=undefined \
        -DLOOPPOINT_WERROR=ON || exit 1
    cmake --build build-ubsan -j || exit 1
    ctest --test-dir build-ubsan --output-on-failure 2>&1 \
        | tee ubsan_output.txt || exit 1
    echo "== lint + race check under UBSan =="
    build-ubsan/tools/lp_lint -p demo-matrix-1 --race-check || exit 1
    echo "ubsan OK"
    exit 0
fi

if [ "$1" = "--tidy" ]; then
    if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "tidy SKIPPED: clang-tidy is not installed"
        exit 0
    fi
    echo "== clang-tidy over src/ and tools/ (build-tidy) =="
    cmake -B build-tidy -S . || exit 1
    files=$(find src tools -name '*.cc')
    # shellcheck disable=SC2086
    clang-tidy -p build-tidy --quiet $files || exit 1
    echo "tidy OK"
    exit 0
fi

if [ "$1" = "--tsan" ] || [ "${LOOPPOINT_TSAN:-0}" = "1" ]; then
    echo "== tier-1 under ThreadSanitizer (build-tsan) =="
    cmake -B build-tsan -S . -DLOOPPOINT_SANITIZE=thread \
        -DLOOPPOINT_WERROR=ON || exit 1
    cmake --build build-tsan -j || exit 1
    ctest --test-dir build-tsan --output-on-failure 2>&1 \
        | tee tsan_output.txt || exit 1
fi

ctest --test-dir build 2>&1 | tee test_output.txt
{
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo
    echo "================================================================"
    echo "== $b"
    echo "================================================================"
    timeout 1800 "$b" 2>/dev/null
done
echo
echo "================================================================"
echo "== build/bench/fig5_accuracy --inorder --quick   (Fig. 5b)"
echo "================================================================"
timeout 1800 build/bench/fig5_accuracy --inorder --quick 2>/dev/null
echo
echo "================================================================"
echo "== build/bench/fig5_accuracy --constrained --quick   (Sec. V-A.1)"
echo "================================================================"
timeout 1800 build/bench/fig5_accuracy --constrained --quick 2>/dev/null
} > bench_output.txt 2>&1
echo ALL_DONE >> bench_output.txt
